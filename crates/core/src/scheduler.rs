//! Scheduler composition: allocator × placer (§4, §6.4).
//!
//! Every scheduling interval the simulator hands the scheduler the
//! active jobs (as [`JobView`]s carrying the online estimates of §3) and
//! the cluster; the scheduler returns a [`Schedule`]: per-job
//! `(p, w)` allocations and concrete per-server placements. Jobs with an
//! allocation but no placement are paused for the interval (§4.2).
//!
//! [`CompositeScheduler`] glues any [`ResourceAllocator`] to any
//! [`TaskPlacer`], which is exactly how the paper's §6.4 ablations swap
//! one component at a time.

use crate::allocation::{
    AllocScratch, Allocation, DrfAllocator, OptimusAllocator, ResourceAllocator, TetrisAllocator,
};
use crate::placement::{
    OptimusPlacer, PackPlacer, PlaceScratch, PlacementStore, SpreadPlacer, TaskPlacer,
};
use crate::speed::SpeedModel;
use optimus_cluster::{Cluster, ResourceVec, ServerId};
use optimus_ps::TaskCounts;
use optimus_telemetry::Telemetry;
use optimus_workload::JobId;
use std::collections::HashMap;

/// What a scheduler knows about one active job.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Job id.
    pub id: JobId,
    /// Resources one worker occupies.
    pub worker_profile: ResourceVec,
    /// Resources one parameter server occupies.
    pub ps_profile: ResourceVec,
    /// Estimated remaining work `Q_j` in steps (§3.1).
    pub remaining_work: f64,
    /// The job's learned speed function (§3.2).
    pub speed: SpeedModel,
    /// Fraction of the job estimated complete, in `[0, 1]` (drives the
    /// §4.1 young-job priority damping).
    pub progress: f64,
    /// Fixed task-pair request used by the DRF/Tetris baselines (the
    /// paper sets ps:worker = 1:1 for both).
    pub requested_units: u32,
}

impl JobView {
    /// Estimated remaining time at a configuration: `Q_j / f(p, w)`,
    /// `f64::INFINITY` when the configuration yields no speed.
    pub fn remaining_time(&self, p: u32, w: u32) -> f64 {
        let f = self.speed.predict(p, w);
        if f <= 0.0 {
            f64::INFINITY
        } else {
            self.remaining_work / f
        }
    }

    /// Combined resources of one worker + one PS.
    pub fn unit_demand(&self) -> ResourceVec {
        self.worker_profile + self.ps_profile
    }
}

/// Placement of one job: its tasks per server.
pub type JobPlacement = Vec<(ServerId, TaskCounts)>;

/// The outcome of one scheduling pass.
///
/// Lookups by job id are O(1): the allocation vector is shadowed by a
/// private id→row index, so the simulator's per-job-per-round
/// [`Schedule::allocation_for`] / [`Schedule::is_running`] queries never
/// scan. The index is maintained by the constructors and
/// [`Schedule::push_allocation`]; when several rows share a job id the
/// first row wins, matching the old linear scan.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// Per-job task counts (jobs with `ps == 0 || workers == 0` received
    /// nothing this interval).
    allocations: Vec<Allocation>,
    /// Concrete placements for the jobs that fit on servers; allocated
    /// jobs missing here are paused (§4.2). Arena-backed so clearing and
    /// refilling a warm schedule allocates nothing.
    placements: PlacementStore,
    /// Job id → row in `allocations` (first occurrence wins).
    index: HashMap<JobId, usize, crate::placement::JobIdBuildHasher>,
}

impl Schedule {
    /// Builds a schedule from its parts, indexing the allocations.
    pub fn new(allocations: Vec<Allocation>, placements: HashMap<JobId, JobPlacement>) -> Self {
        let mut schedule = Schedule {
            allocations,
            placements: placements.into_iter().collect(),
            index: HashMap::default(),
        };
        schedule.rebuild_index();
        schedule
    }

    /// Clears all three parts, keeping their capacity.
    pub fn reset(&mut self) {
        self.allocations.clear();
        self.placements.clear();
        self.index.clear();
    }

    /// Rebuilds the id → row index after `allocations` changed wholesale.
    fn rebuild_index(&mut self) {
        self.index.clear();
        for (i, a) in self.allocations.iter().enumerate() {
            self.index.entry(a.job).or_insert(i);
        }
    }

    /// The per-job allocation rows, in allocator order.
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// All placements, keyed by job.
    pub fn placements(&self) -> &PlacementStore {
        &self.placements
    }

    /// Appends an allocation row, keeping the lookup index in sync.
    pub fn push_allocation(&mut self, allocation: Allocation) {
        self.index
            .entry(allocation.job)
            .or_insert(self.allocations.len());
        self.allocations.push(allocation);
    }

    /// Inserts (or replaces) a job's placement.
    pub fn insert_placement(&mut self, id: JobId, placement: JobPlacement) {
        self.placements.insert(id, &placement);
    }

    /// The allocation row for a job, if any (O(1)).
    pub fn allocation_for(&self, id: JobId) -> Option<&Allocation> {
        self.index.get(&id).map(|&i| &self.allocations[i])
    }

    /// The placement for a job, if it was placed.
    pub fn placement_for(&self, id: JobId) -> Option<&[(ServerId, TaskCounts)]> {
        self.placements.get(id)
    }

    /// True when the job both received resources and was placed.
    pub fn is_running(&self, id: JobId) -> bool {
        self.placements.contains(id)
            && self
                .allocation_for(id)
                .is_some_and(|a| a.ps > 0 && a.workers > 0)
    }

    /// Total tasks (PS + workers) placed.
    pub fn total_tasks(&self) -> u64 {
        self.placements
            .iter()
            .flat_map(|(_, p)| p.iter())
            .map(|(_, c)| (c.ps + c.workers) as u64)
            .sum()
    }

    /// Total reserved capacity, for growth detection.
    fn footprint(&self) -> usize {
        self.allocations.capacity() + self.placements.footprint() + self.index.capacity()
    }
}

/// Persistent per-round working state: the allocator's lazy heap,
/// prediction caches and generation stamps plus the placer's free-index
/// and packing buffers. Owned by the driver (the simulator keeps one for
/// its lifetime) and handed to [`Scheduler::schedule_into`] every round,
/// so steady-state rounds run without heap allocation.
#[derive(Debug, Default)]
pub struct RoundScratch {
    pub(crate) alloc: AllocScratch,
    pub(crate) place: PlaceScratch,
}

impl RoundScratch {
    /// Total reserved capacity, for growth detection.
    fn footprint(&self) -> usize {
        self.alloc.footprint() + self.place.footprint()
    }
}

/// A complete scheduler: produces a [`Schedule`] each interval.
pub trait Scheduler {
    /// Human-readable name for reports ("Optimus", "DRF", "Tetris", ...).
    fn name(&self) -> &str;

    /// Computes allocations and placements for the active jobs.
    fn schedule(&self, jobs: &[JobView], cluster: &Cluster) -> Schedule;

    /// Scratch-reusing variant for the steady-state round loop: writes
    /// the decision into `out` and may keep working state in `scratch`
    /// between rounds. The default delegates to [`Self::schedule`];
    /// [`CompositeScheduler`] overrides it to reuse every buffer.
    fn schedule_into(
        &self,
        jobs: &[JobView],
        cluster: &Cluster,
        _scratch: &mut RoundScratch,
        out: &mut Schedule,
    ) {
        *out = self.schedule(jobs, cluster);
    }
}

/// An allocator glued to a placer.
pub struct CompositeScheduler {
    name: String,
    allocator: Box<dyn ResourceAllocator + Send + Sync>,
    placer: Box<dyn TaskPlacer + Send + Sync>,
    tel: Telemetry,
}

impl CompositeScheduler {
    /// Creates a scheduler from parts (used directly by the §6.4
    /// ablations).
    pub fn new(
        name: impl Into<String>,
        allocator: Box<dyn ResourceAllocator + Send + Sync>,
        placer: Box<dyn TaskPlacer + Send + Sync>,
    ) -> Self {
        CompositeScheduler {
            name: name.into(),
            allocator,
            placer,
            tel: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: each `schedule` call is wrapped in a
    /// `sched.decision` span (so `optimus-trace --spans` can report
    /// per-round decision-latency percentiles). The allocator and placer
    /// keep their own handles (see
    /// [`OptimusScheduler::build_with_telemetry`], which shares one
    /// handle across all three).
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }
}

impl Scheduler for CompositeScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn schedule(&self, jobs: &[JobView], cluster: &Cluster) -> Schedule {
        let mut out = Schedule::default();
        self.schedule_into(jobs, cluster, &mut RoundScratch::default(), &mut out);
        out
    }

    /// The allocation-free steady-state path: allocator and placer write
    /// straight into `out`'s buffers through their `*_into` hooks. When
    /// telemetry is enabled, a round that had to grow any scratch or
    /// schedule buffer (a cold round) bumps `sched.round_allocs`; warm
    /// rounds leave the counter untouched.
    fn schedule_into(
        &self,
        jobs: &[JobView],
        cluster: &Cluster,
        scratch: &mut RoundScratch,
        out: &mut Schedule,
    ) {
        let _span = self
            .tel
            .is_enabled()
            .then(|| self.tel.span("sched.decision"));
        // Footprints feed only the cold-round counter; skip the buffer
        // walk entirely when telemetry is off.
        let footprint = self
            .tel
            .is_enabled()
            .then(|| scratch.footprint() + out.footprint());
        out.reset();
        self.allocator
            .allocate_into(jobs, cluster, &mut scratch.alloc, &mut out.allocations);
        out.rebuild_index();
        self.placer.place_into(
            &out.allocations,
            jobs,
            cluster,
            &mut scratch.place,
            &mut out.placements,
        );
        if let Some(before) = footprint {
            if scratch.footprint() + out.footprint() != before {
                self.tel.add("sched.round_allocs", 1);
            }
        }
    }
}

/// The full Optimus scheduler: marginal-gain allocation + Theorem-1
/// placement.
pub struct OptimusScheduler;

impl OptimusScheduler {
    /// Builds the scheduler with default parameters (priority factor 1).
    pub fn build() -> CompositeScheduler {
        CompositeScheduler::new(
            "Optimus",
            Box::new(OptimusAllocator::default()),
            Box::new(OptimusPlacer::default()),
        )
    }

    /// Builds with an explicit §4.1 priority factor (the paper evaluates
    /// 0.95).
    pub fn with_priority_factor(factor: f64) -> CompositeScheduler {
        CompositeScheduler::new(
            format!("Optimus(pf={factor})"),
            Box::new(OptimusAllocator::default().with_priority_factor(factor)),
            Box::new(OptimusPlacer::default()),
        )
    }

    /// Builds the scheduler with one shared [`Telemetry`] handle wired
    /// through the allocator, the placer and the composite itself, so a
    /// single handle sees `alloc.*`, `placement.*` and the
    /// `sched.decision` spans of every round.
    pub fn build_with_telemetry(tel: Telemetry) -> CompositeScheduler {
        CompositeScheduler::new(
            "Optimus",
            Box::new(OptimusAllocator::default().with_telemetry(tel.clone())),
            Box::new(OptimusPlacer::default().with_telemetry(tel.clone())),
        )
        .with_telemetry(tel)
    }
}

impl Default for CompositeScheduler {
    fn default() -> Self {
        OptimusScheduler::build()
    }
}

/// The DRF fairness baseline: progressive filling + load-balancing
/// (Kubernetes-default) placement.
pub struct DrfScheduler;

impl DrfScheduler {
    /// Builds the baseline as configured in §6.1.
    pub fn build() -> CompositeScheduler {
        CompositeScheduler::new(
            "DRF",
            Box::new(DrfAllocator::default()),
            Box::new(SpreadPlacer),
        )
    }
}

/// The Tetris baseline: packing + SRTF allocation with
/// fragmentation-minimizing placement.
pub struct TetrisScheduler;

impl TetrisScheduler {
    /// Builds the baseline as configured in §6.1 (fed by Optimus's own
    /// estimators, as in the paper).
    pub fn build() -> CompositeScheduler {
        CompositeScheduler::new(
            "Tetris",
            Box::new(TetrisAllocator::default()),
            Box::new(PackPlacer),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_workload::TrainingMode;

    fn dummy_speed() -> SpeedModel {
        let mut s = SpeedModel::new(TrainingMode::Synchronous, 64.0);
        for (p, w, f) in [
            (1u32, 1u32, 0.02),
            (2, 2, 0.04),
            (4, 4, 0.07),
            (8, 8, 0.09),
            (4, 8, 0.08),
        ] {
            s.record(p, w, f);
        }
        s.refit().unwrap();
        s
    }

    fn job(id: u64) -> JobView {
        JobView {
            id: JobId(id),
            worker_profile: optimus_workload::job::default_container(),
            ps_profile: optimus_workload::job::default_container(),
            remaining_work: 10_000.0,
            speed: dummy_speed(),
            progress: 0.5,
            requested_units: 4,
        }
    }

    #[test]
    fn remaining_time_uses_speed() {
        let j = job(0);
        let t44 = j.remaining_time(4, 4);
        assert!(t44.is_finite() && t44 > 0.0);
        assert_eq!(j.remaining_time(0, 4), f64::INFINITY);
    }

    #[test]
    fn all_three_schedulers_produce_runnable_schedules() {
        let cluster = Cluster::paper_testbed();
        let jobs: Vec<JobView> = (0..3).map(job).collect();
        for sched in [
            OptimusScheduler::build(),
            DrfScheduler::build(),
            TetrisScheduler::build(),
        ] {
            let s = sched.schedule(&jobs, &cluster);
            assert!(!s.allocations().is_empty(), "{}", sched.name());
            for j in &jobs {
                assert!(
                    s.is_running(j.id),
                    "{}: {:?} not running",
                    sched.name(),
                    j.id
                );
            }
            assert!(s.total_tasks() > 0);
        }
    }

    #[test]
    fn schedule_lookup_helpers() {
        let cluster = Cluster::paper_testbed();
        let jobs = vec![job(7)];
        let s = OptimusScheduler::build().schedule(&jobs, &cluster);
        assert!(s.allocation_for(JobId(7)).is_some());
        assert!(s.allocation_for(JobId(99)).is_none());
        assert!(s.placement_for(JobId(7)).is_some());
    }

    #[test]
    fn indexed_lookup_matches_linear_scan_on_out_of_order_rows() {
        // Regression for the old O(n) `allocation_for` scan: the indexed
        // lookup must return exactly the row a linear scan would, for a
        // duplicate-free allocation vector in arbitrary (non-id) order,
        // however the schedule was built.
        let rows: Vec<Allocation> = [9u64, 2, 13, 0, 7, 4]
            .iter()
            .enumerate()
            .map(|(i, &id)| Allocation {
                job: JobId(id),
                ps: i as u32 + 1,
                workers: 2 * i as u32 + 1,
            })
            .collect();

        let built = Schedule::new(rows.clone(), HashMap::new());
        let mut pushed = Schedule::default();
        for a in &rows {
            pushed.push_allocation(*a);
        }
        for s in [&built, &pushed] {
            assert_eq!(s.allocations(), rows.as_slice());
            for a in &rows {
                let scan = rows.iter().find(|r| r.job == a.job);
                assert_eq!(s.allocation_for(a.job), scan, "{:?}", a.job);
            }
            assert_eq!(s.allocation_for(JobId(99)), None);
            assert!(!s.is_running(JobId(9)), "no placement inserted");
        }
    }
}
