//! Scheduler composition: allocator × placer (§4, §6.4).
//!
//! Every scheduling interval the simulator hands the scheduler the
//! active jobs (as [`JobView`]s carrying the online estimates of §3) and
//! the cluster; the scheduler returns a [`Schedule`]: per-job
//! `(p, w)` allocations and concrete per-server placements. Jobs with an
//! allocation but no placement are paused for the interval (§4.2).
//!
//! [`CompositeScheduler`] glues any [`ResourceAllocator`] to any
//! [`TaskPlacer`], which is exactly how the paper's §6.4 ablations swap
//! one component at a time.

use crate::allocation::{
    Allocation, DrfAllocator, OptimusAllocator, ResourceAllocator, TetrisAllocator,
};
use crate::placement::{OptimusPlacer, PackPlacer, SpreadPlacer, TaskPlacer};
use crate::speed::SpeedModel;
use optimus_cluster::{Cluster, ResourceVec, ServerId};
use optimus_ps::TaskCounts;
use optimus_telemetry::Telemetry;
use optimus_workload::JobId;
use std::collections::HashMap;

/// What a scheduler knows about one active job.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Job id.
    pub id: JobId,
    /// Resources one worker occupies.
    pub worker_profile: ResourceVec,
    /// Resources one parameter server occupies.
    pub ps_profile: ResourceVec,
    /// Estimated remaining work `Q_j` in steps (§3.1).
    pub remaining_work: f64,
    /// The job's learned speed function (§3.2).
    pub speed: SpeedModel,
    /// Fraction of the job estimated complete, in `[0, 1]` (drives the
    /// §4.1 young-job priority damping).
    pub progress: f64,
    /// Fixed task-pair request used by the DRF/Tetris baselines (the
    /// paper sets ps:worker = 1:1 for both).
    pub requested_units: u32,
}

impl JobView {
    /// Estimated remaining time at a configuration: `Q_j / f(p, w)`,
    /// `f64::INFINITY` when the configuration yields no speed.
    pub fn remaining_time(&self, p: u32, w: u32) -> f64 {
        let f = self.speed.predict(p, w);
        if f <= 0.0 {
            f64::INFINITY
        } else {
            self.remaining_work / f
        }
    }

    /// Combined resources of one worker + one PS.
    pub fn unit_demand(&self) -> ResourceVec {
        self.worker_profile + self.ps_profile
    }
}

/// Placement of one job: its tasks per server.
pub type JobPlacement = Vec<(ServerId, TaskCounts)>;

/// The outcome of one scheduling pass.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// Per-job task counts (jobs with `ps == 0 || workers == 0` received
    /// nothing this interval).
    pub allocations: Vec<Allocation>,
    /// Concrete placements for the jobs that fit on servers; allocated
    /// jobs missing here are paused (§4.2).
    pub placements: HashMap<JobId, JobPlacement>,
}

impl Schedule {
    /// The allocation row for a job, if any.
    pub fn allocation_for(&self, id: JobId) -> Option<&Allocation> {
        self.allocations.iter().find(|a| a.job == id)
    }

    /// The placement for a job, if it was placed.
    pub fn placement_for(&self, id: JobId) -> Option<&JobPlacement> {
        self.placements.get(&id)
    }

    /// True when the job both received resources and was placed.
    pub fn is_running(&self, id: JobId) -> bool {
        self.placements.contains_key(&id)
            && self
                .allocation_for(id)
                .is_some_and(|a| a.ps > 0 && a.workers > 0)
    }

    /// Total tasks (PS + workers) placed.
    pub fn total_tasks(&self) -> u64 {
        self.placements
            .values()
            .flat_map(|p| p.iter())
            .map(|(_, c)| (c.ps + c.workers) as u64)
            .sum()
    }
}

/// A complete scheduler: produces a [`Schedule`] each interval.
pub trait Scheduler {
    /// Human-readable name for reports ("Optimus", "DRF", "Tetris", ...).
    fn name(&self) -> &str;

    /// Computes allocations and placements for the active jobs.
    fn schedule(&self, jobs: &[JobView], cluster: &Cluster) -> Schedule;
}

/// An allocator glued to a placer.
pub struct CompositeScheduler {
    name: String,
    allocator: Box<dyn ResourceAllocator + Send + Sync>,
    placer: Box<dyn TaskPlacer + Send + Sync>,
    tel: Telemetry,
}

impl CompositeScheduler {
    /// Creates a scheduler from parts (used directly by the §6.4
    /// ablations).
    pub fn new(
        name: impl Into<String>,
        allocator: Box<dyn ResourceAllocator + Send + Sync>,
        placer: Box<dyn TaskPlacer + Send + Sync>,
    ) -> Self {
        CompositeScheduler {
            name: name.into(),
            allocator,
            placer,
            tel: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: each `schedule` call is wrapped in a
    /// `scheduler.schedule` span. The allocator and placer keep their own
    /// handles (see [`OptimusScheduler::build_with_telemetry`], which
    /// shares one handle across all three).
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }
}

impl Scheduler for CompositeScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn schedule(&self, jobs: &[JobView], cluster: &Cluster) -> Schedule {
        let _span = self
            .tel
            .is_enabled()
            .then(|| self.tel.span("scheduler.schedule"));
        let allocations = self.allocator.allocate(jobs, cluster);
        let placements = self.placer.place(&allocations, jobs, cluster);
        Schedule {
            allocations,
            placements,
        }
    }
}

/// The full Optimus scheduler: marginal-gain allocation + Theorem-1
/// placement.
pub struct OptimusScheduler;

impl OptimusScheduler {
    /// Builds the scheduler with default parameters (priority factor 1).
    pub fn build() -> CompositeScheduler {
        CompositeScheduler::new(
            "Optimus",
            Box::new(OptimusAllocator::default()),
            Box::new(OptimusPlacer::default()),
        )
    }

    /// Builds with an explicit §4.1 priority factor (the paper evaluates
    /// 0.95).
    pub fn with_priority_factor(factor: f64) -> CompositeScheduler {
        CompositeScheduler::new(
            format!("Optimus(pf={factor})"),
            Box::new(OptimusAllocator::default().with_priority_factor(factor)),
            Box::new(OptimusPlacer::default()),
        )
    }

    /// Builds the scheduler with one shared [`Telemetry`] handle wired
    /// through the allocator, the placer and the composite itself, so a
    /// single handle sees `alloc.*`, `placement.*` and the
    /// `scheduler.schedule` spans of every round.
    pub fn build_with_telemetry(tel: Telemetry) -> CompositeScheduler {
        CompositeScheduler::new(
            "Optimus",
            Box::new(OptimusAllocator::default().with_telemetry(tel.clone())),
            Box::new(OptimusPlacer::default().with_telemetry(tel.clone())),
        )
        .with_telemetry(tel)
    }
}

impl Default for CompositeScheduler {
    fn default() -> Self {
        OptimusScheduler::build()
    }
}

/// The DRF fairness baseline: progressive filling + load-balancing
/// (Kubernetes-default) placement.
pub struct DrfScheduler;

impl DrfScheduler {
    /// Builds the baseline as configured in §6.1.
    pub fn build() -> CompositeScheduler {
        CompositeScheduler::new(
            "DRF",
            Box::new(DrfAllocator::default()),
            Box::new(SpreadPlacer),
        )
    }
}

/// The Tetris baseline: packing + SRTF allocation with
/// fragmentation-minimizing placement.
pub struct TetrisScheduler;

impl TetrisScheduler {
    /// Builds the baseline as configured in §6.1 (fed by Optimus's own
    /// estimators, as in the paper).
    pub fn build() -> CompositeScheduler {
        CompositeScheduler::new(
            "Tetris",
            Box::new(TetrisAllocator::default()),
            Box::new(PackPlacer),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_workload::TrainingMode;

    fn dummy_speed() -> SpeedModel {
        let mut s = SpeedModel::new(TrainingMode::Synchronous, 64.0);
        for (p, w, f) in [
            (1u32, 1u32, 0.02),
            (2, 2, 0.04),
            (4, 4, 0.07),
            (8, 8, 0.09),
            (4, 8, 0.08),
        ] {
            s.record(p, w, f);
        }
        s.refit().unwrap();
        s
    }

    fn job(id: u64) -> JobView {
        JobView {
            id: JobId(id),
            worker_profile: optimus_workload::job::default_container(),
            ps_profile: optimus_workload::job::default_container(),
            remaining_work: 10_000.0,
            speed: dummy_speed(),
            progress: 0.5,
            requested_units: 4,
        }
    }

    #[test]
    fn remaining_time_uses_speed() {
        let j = job(0);
        let t44 = j.remaining_time(4, 4);
        assert!(t44.is_finite() && t44 > 0.0);
        assert_eq!(j.remaining_time(0, 4), f64::INFINITY);
    }

    #[test]
    fn all_three_schedulers_produce_runnable_schedules() {
        let cluster = Cluster::paper_testbed();
        let jobs: Vec<JobView> = (0..3).map(job).collect();
        for sched in [
            OptimusScheduler::build(),
            DrfScheduler::build(),
            TetrisScheduler::build(),
        ] {
            let s = sched.schedule(&jobs, &cluster);
            assert!(!s.allocations.is_empty(), "{}", sched.name());
            for j in &jobs {
                assert!(
                    s.is_running(j.id),
                    "{}: {:?} not running",
                    sched.name(),
                    j.id
                );
            }
            assert!(s.total_tasks() > 0);
        }
    }

    #[test]
    fn schedule_lookup_helpers() {
        let cluster = Cluster::paper_testbed();
        let jobs = vec![job(7)];
        let s = OptimusScheduler::build().schedule(&jobs, &cluster);
        assert!(s.allocation_for(JobId(7)).is_some());
        assert!(s.allocation_for(JobId(99)).is_none());
        assert!(s.placement_for(JobId(7)).is_some());
    }
}
