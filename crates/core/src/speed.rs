//! Resource→speed models (§3.2, Eqns 3 and 4).
//!
//! The training speed of a job as a function of its parameter-server and
//! worker counts is learned, not measured term by term: before a job
//! starts, the scheduler profiles it for a few steps under a handful of
//! `(p, w)` combinations; during execution every observed
//! `(p, w, speed)` sample keeps calibrating the model.
//!
//! Both speed functions are linear in their coefficients after
//! inversion, so fitting is a single NNLS solve:
//!
//! * **asynchronous** (Eqn 3): `f(p,w) = w·(θ₀ + θ₁·w/p + θ₂·w + θ₃·p)⁻¹`
//!   → regress `w/f` on `[1, w/p, w, p]`;
//! * **synchronous** (Eqn 4): `f(p,w) = (θ₀·M/w + θ₁ + θ₂·w/p + θ₃·w +
//!   θ₄·p)⁻¹` → regress `1/f` on `[M/w, 1, w/p, w, p]`.

use optimus_fitting::{FitError, LinearModel, NonNegLinearFit};
use optimus_telemetry::Telemetry;
use optimus_workload::TrainingMode;
use serde::{Deserialize, Serialize};

/// One profiled or observed sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedSample {
    /// Parameter servers.
    pub p: u32,
    /// Workers.
    pub w: u32,
    /// Measured speed, steps/s (aggregate steps for async).
    pub speed: f64,
}

/// A learned training-speed function `f(p, w)` for one job.
#[derive(Debug, Clone)]
pub struct SpeedModel {
    mode: TrainingMode,
    /// Global batch size `M` (used by the synchronous feature map).
    batch: f64,
    samples: Vec<SpeedSample>,
    model: Option<LinearModel>,
    /// Multiplier applied to every prediction (1.0 = unbiased). Used by
    /// the sensitivity experiments (Fig 15) to inject controlled
    /// speed-estimation error.
    prediction_scale: f64,
    /// Optional cap on retained samples: when set, old observations are
    /// forgotten FIFO so the model tracks a drifting environment
    /// (contention, stragglers) instead of averaging over its history.
    /// The initial profiling samples are protected — the window applies
    /// to online observations only.
    window: Option<usize>,
    /// Number of leading samples protected from the window (the §3.2
    /// profiling runs).
    protected: usize,
    /// Mutation generation: bumped by every [`Self::record`] and every
    /// successful [`Self::refit`]. Two models with equal generations
    /// (obtained via `clone`) are bitwise-identical predictors, which is
    /// what the delta-round engine's job fingerprints compare instead of
    /// hashing coefficients. The prediction scale is fingerprinted
    /// separately (by value), so [`Self::set_prediction_scale`] does not
    /// bump it.
    gen: u64,
    /// Telemetry sink for the refit NNLS solves (disabled by default).
    tel: Telemetry,
}

impl SpeedModel {
    /// Creates an empty model for a job.
    pub fn new(mode: TrainingMode, batch: f64) -> Self {
        SpeedModel {
            mode,
            batch,
            samples: Vec::new(),
            model: None,
            prediction_scale: 1.0,
            window: None,
            protected: 0,
            gen: 0,
            tel: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: each [`SpeedModel::refit`] then
    /// counts as one `speed.refits` and routes its NNLS solve through the
    /// handle's `nnls.*` metrics.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }

    /// Caps retained *online* samples at `window`, forgetting the oldest
    /// first. Samples recorded before this call (the profiling runs) are
    /// never evicted — they anchor the model across the whole
    /// configuration space.
    pub fn with_sample_window(mut self, window: usize) -> Self {
        self.window = Some(window.max(1));
        self.protected = self.samples.len();
        self
    }

    /// Sets the prediction multiplier (Fig 15 error injection; 1.0 =
    /// unbiased).
    pub fn set_prediction_scale(&mut self, scale: f64) {
        self.prediction_scale = scale;
    }

    /// The current prediction multiplier.
    pub fn prediction_scale(&self) -> f64 {
        self.prediction_scale
    }

    /// The training mode this model describes.
    pub fn mode(&self) -> TrainingMode {
        self.mode
    }

    /// Records an observed `(p, w, speed)` sample. Non-finite or
    /// non-positive speeds and degenerate configurations are ignored
    /// (they carry no information about the feasible region).
    pub fn record(&mut self, p: u32, w: u32, speed: f64) {
        if p == 0 || w == 0 || !speed.is_finite() || speed <= 0.0 {
            return;
        }
        self.samples.push(SpeedSample { p, w, speed });
        self.gen += 1;
        if let Some(window) = self.window {
            while self.samples.len() > self.protected + window {
                self.samples.remove(self.protected);
            }
        }
    }

    /// Mutation generation of this model: equal generations on clones of
    /// one model guarantee bit-identical predictions (at equal
    /// prediction scales). Monotone per model; not comparable across
    /// jobs.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Number of recorded samples.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Number of coefficients the feature map produces.
    pub fn num_coefficients(&self) -> usize {
        match self.mode {
            TrainingMode::Asynchronous => 4,
            TrainingMode::Synchronous => 5,
        }
    }

    /// Refits the model by NNLS over all samples.
    ///
    /// Returns [`FitError::NotEnoughSamples`] until the sample count
    /// reaches the coefficient count; the previous model (if any)
    /// survives a failed refit.
    pub fn refit(&mut self) -> Result<(), FitError> {
        let rows: Vec<Vec<f64>> = self
            .samples
            .iter()
            .map(|s| self.features(s.p, s.w))
            .collect();
        let targets: Vec<f64> = self
            .samples
            .iter()
            .map(|s| match self.mode {
                TrainingMode::Asynchronous => s.w as f64 / s.speed,
                TrainingMode::Synchronous => 1.0 / s.speed,
            })
            .collect();
        self.tel.incr("speed.refits");
        let fitted = NonNegLinearFit.fit_rows_traced(&rows, &targets, &self.tel)?;
        self.model = Some(fitted);
        self.gen += 1;
        Ok(())
    }

    /// True once a model has been fit.
    pub fn is_fit(&self) -> bool {
        self.model.is_some()
    }

    /// The fitted coefficients θ (empty before the first successful fit).
    pub fn coefficients(&self) -> &[f64] {
        self.model
            .as_ref()
            .map(|m| m.theta.as_slice())
            .unwrap_or(&[])
    }

    /// Residual sum of squares of the last fit (in inverted-speed space),
    /// as reported in Table 2.
    pub fn residual_ss(&self) -> Option<f64> {
        self.model.as_ref().map(|m| m.residual_ss)
    }

    /// Predicted speed at `(p, w)`, steps/s. Returns 0.0 for infeasible
    /// configurations (`p == 0 || w == 0`), unfit models, or degenerate
    /// fits predicting a non-positive step time.
    pub fn predict(&self, p: u32, w: u32) -> f64 {
        if p == 0 || w == 0 {
            return 0.0;
        }
        let Some(model) = self.model.as_ref() else {
            return 0.0;
        };
        let (feat, n) = self.feature_row(p, w);
        let inv = match model.predict(&feat[..n]) {
            Ok(v) => v,
            Err(_) => return 0.0,
        };
        if inv <= 0.0 || !inv.is_finite() {
            return 0.0;
        }
        let raw = match self.mode {
            TrainingMode::Asynchronous => w as f64 / inv,
            TrainingMode::Synchronous => 1.0 / inv,
        };
        (raw * self.prediction_scale).max(0.0)
    }

    /// The feature row for a configuration (heap-allocating; used by the
    /// occasional refit — predictions use [`Self::feature_row`]).
    fn features(&self, p: u32, w: u32) -> Vec<f64> {
        let (row, n) = self.feature_row(p, w);
        row[..n].to_vec()
    }

    /// The feature row on the stack: `predict` sits on the allocator's
    /// per-candidate hot path, where a `Vec` per call is measurable.
    #[inline]
    fn feature_row(&self, p: u32, w: u32) -> ([f64; 5], usize) {
        let pf = p as f64;
        let wf = w as f64;
        match self.mode {
            TrainingMode::Asynchronous => ([1.0, wf / pf, wf, pf, 0.0], 4),
            TrainingMode::Synchronous => ([self.batch / wf, 1.0, wf / pf, wf, pf], 5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_ps::PsJobModel;
    use optimus_workload::ModelKind;

    /// Profiles a ground-truth model at the given configurations, fits,
    /// and returns (model, ground truth).
    fn fit_from_truth(
        mode: TrainingMode,
        configs: &[(u32, u32)],
    ) -> (SpeedModel, PsJobModel<'static>) {
        let profile = ModelKind::ResNet50.profile();
        let truth = PsJobModel::new(profile, mode);
        let mut model = SpeedModel::new(mode, profile.batch_size as f64);
        for &(p, w) in configs {
            model.record(p, w, truth.speed(p, w));
        }
        model.refit().unwrap();
        (model, truth)
    }

    /// The paper's initialization: a handful of (p, w) combinations.
    const PROFILE_CONFIGS: [(u32, u32); 8] = [
        (1, 1),
        (2, 2),
        (4, 4),
        (8, 8),
        (4, 8),
        (8, 4),
        (12, 6),
        (6, 12),
    ];

    #[test]
    fn sync_fit_predicts_unseen_configs() {
        let (model, truth) = fit_from_truth(TrainingMode::Synchronous, &PROFILE_CONFIGS);
        for &(p, w) in &[(3u32, 5u32), (10, 10), (16, 8), (5, 15), (20, 20)] {
            let est = model.predict(p, w);
            let real = truth.speed(p, w);
            let err = (est - real).abs() / real;
            assert!(err < 0.12, "({p},{w}): est {est} real {real} err {err}");
        }
    }

    #[test]
    fn async_fit_predicts_unseen_configs() {
        let (model, truth) = fit_from_truth(TrainingMode::Asynchronous, &PROFILE_CONFIGS);
        for &(p, w) in &[(3u32, 5u32), (10, 10), (16, 8), (5, 15)] {
            let est = model.predict(p, w);
            let real = truth.speed(p, w);
            let err = (est - real).abs() / real;
            assert!(err < 0.12, "({p},{w}): est {est} real {real} err {err}");
        }
    }

    #[test]
    fn more_samples_reduce_error_fig8() {
        // Fig 8: estimation error shrinks with the number of samples,
        // with diminishing returns. Evaluate mean relative error over a
        // grid after fitting on prefixes of a sample list.
        let profile = ModelKind::ResNet50.profile();
        let truth = PsJobModel::new(profile, TrainingMode::Synchronous);
        let all: Vec<(u32, u32)> = (1..=12)
            .flat_map(|p| (1..=12).map(move |w| (p, w)))
            .filter(|(p, w)| (p * 7 + w * 13) % 11 < 4) // pseudo-random subset
            .collect();
        let eval = |m: &SpeedModel| -> f64 {
            let mut errs = Vec::new();
            for p in (2..=20).step_by(3) {
                for w in (2..=20).step_by(3) {
                    let real = truth.speed(p, w);
                    errs.push((m.predict(p, w) - real).abs() / real);
                }
            }
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        let fit_prefix = |n: usize| -> SpeedModel {
            let mut m = SpeedModel::new(TrainingMode::Synchronous, profile.batch_size as f64);
            for &(p, w) in &all[..n] {
                m.record(p, w, truth.speed(p, w));
            }
            m.refit().unwrap();
            m
        };
        let err_small = eval(&fit_prefix(6));
        let err_large = eval(&fit_prefix(all.len()));
        assert!(err_large <= err_small + 1e-9);
        // Paper: < 10 % error with ~10 samples.
        assert!(eval(&fit_prefix(10)) < 0.10);
    }

    #[test]
    fn rejects_insufficient_samples() {
        let mut m = SpeedModel::new(TrainingMode::Synchronous, 256.0);
        m.record(1, 1, 0.1);
        m.record(2, 2, 0.2);
        assert!(matches!(m.refit(), Err(FitError::NotEnoughSamples { .. })));
        assert!(!m.is_fit());
        assert_eq!(m.predict(4, 4), 0.0);
    }

    #[test]
    fn ignores_degenerate_samples() {
        let mut m = SpeedModel::new(TrainingMode::Asynchronous, 256.0);
        m.record(0, 4, 1.0);
        m.record(4, 0, 1.0);
        m.record(4, 4, f64::NAN);
        m.record(4, 4, -1.0);
        assert_eq!(m.sample_count(), 0);
    }

    #[test]
    fn infeasible_configs_predict_zero() {
        let (model, _) = fit_from_truth(TrainingMode::Synchronous, &PROFILE_CONFIGS);
        assert_eq!(model.predict(0, 4), 0.0);
        assert_eq!(model.predict(4, 0), 0.0);
    }

    #[test]
    fn coefficients_shape_matches_table2() {
        // Table 2: both modes have non-negative coefficients; the
        // compute (θ₀ sync) and transfer (w/p) terms dominate.
        let (sync, _) = fit_from_truth(TrainingMode::Synchronous, &PROFILE_CONFIGS);
        assert_eq!(sync.coefficients().len(), 5);
        assert!(sync.coefficients().iter().all(|&c| c >= 0.0));
        assert!(sync.residual_ss().unwrap() < 1.0);
        let (asy, _) = fit_from_truth(TrainingMode::Asynchronous, &PROFILE_CONFIGS);
        assert_eq!(asy.coefficients().len(), 4);
        assert!(asy.coefficients().iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn sample_window_forgets_stale_observations() {
        let profile = ModelKind::ResNet50.profile();
        let truth = PsJobModel::new(profile, TrainingMode::Synchronous);
        let mut m = SpeedModel::new(TrainingMode::Synchronous, profile.batch_size as f64);
        for &(p, w) in &PROFILE_CONFIGS {
            m.record(p, w, truth.speed(p, w));
        }
        let mut m = m.with_sample_window(10);
        let protected = m.sample_count();
        // A burst of observations from a degraded environment (half
        // speed), then recovery: with the window, the stale degraded
        // samples age out.
        for _ in 0..10 {
            m.record(10, 10, truth.speed(10, 10) * 0.5);
        }
        for _ in 0..10 {
            m.record(10, 10, truth.speed(10, 10));
        }
        assert_eq!(m.sample_count(), protected + 10);
        m.refit().unwrap();
        let err = (m.predict(10, 10) - truth.speed(10, 10)).abs() / truth.speed(10, 10);
        assert!(err < 0.05, "window should track recovery: err {err}");
    }

    #[test]
    fn window_never_evicts_profiling_samples() {
        let mut m = SpeedModel::new(TrainingMode::Asynchronous, 256.0);
        m.record(1, 1, 0.5);
        m.record(8, 8, 3.0);
        let mut m = m.with_sample_window(2);
        for i in 0..20 {
            m.record(4, 4, 1.0 + i as f64 * 0.001);
        }
        // 2 protected + 2 window.
        assert_eq!(m.sample_count(), 4);
    }

    #[test]
    fn online_calibration_improves_local_accuracy() {
        // After fitting on profiling samples, feeding many observations
        // around the operating point keeps the model accurate there.
        let profile = ModelKind::Seq2Seq.profile();
        let truth = PsJobModel::new(profile, TrainingMode::Synchronous);
        let mut m = SpeedModel::new(TrainingMode::Synchronous, profile.batch_size as f64);
        for &(p, w) in &PROFILE_CONFIGS {
            m.record(p, w, truth.speed(p, w));
        }
        m.refit().unwrap();
        for _ in 0..20 {
            m.record(10, 10, truth.speed(10, 10));
        }
        m.refit().unwrap();
        let err = (m.predict(10, 10) - truth.speed(10, 10)).abs() / truth.speed(10, 10);
        assert!(err < 0.05, "operating-point error {err}");
    }
}
