//! Resource allocation: Optimus' marginal-gain heuristic (§4.1) and the
//! DRF / Tetris baseline allocators (§6.1).
//!
//! Optimus solves the NP-hard program (5)–(8) greedily: every job starts
//! with one worker and one PS (starvation avoidance), then the allocator
//! repeatedly grants one task to the job whose next worker *or* PS buys
//! the largest completion-time reduction per unit of the task's dominant
//! resource, until the cluster is full or no addition helps. Gains are
//! kept in a lazy max-heap, giving `O(T log J)` for `T` granted tasks —
//! fast enough for the Fig 12 scalability target (100 k tasks in
//! seconds).

use crate::scheduler::JobView;
use optimus_cluster::{Cluster, ResourceKind, ResourceVec};
use optimus_telemetry::{AllocWhy, RunnerUp, Telemetry, TraceEvent};
use optimus_workload::JobId;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Task counts granted to one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// The job.
    pub job: JobId,
    /// Parameter servers granted.
    pub ps: u32,
    /// Workers granted.
    pub workers: u32,
}

impl Allocation {
    /// Total resources this allocation occupies for a job's profiles.
    pub fn demand(&self, job: &JobView) -> ResourceVec {
        job.worker_profile * self.workers as f64 + job.ps_profile * self.ps as f64
    }
}

/// A resource-allocation policy.
pub trait ResourceAllocator {
    /// Decides `(p, w)` for every job. Jobs that receive nothing get a
    /// `(0, 0)` row (they pause this interval).
    fn allocate(&self, jobs: &[JobView], cluster: &Cluster) -> Vec<Allocation>;

    /// Scratch-reusing variant for the steady-state round loop: writes
    /// the rows into `out` (cleared first) and may keep working state in
    /// `scratch` between rounds. The default delegates to
    /// [`Self::allocate`]; allocators with a hot path override it to run
    /// allocation-free once `scratch`/`out` are warm.
    fn allocate_into(
        &self,
        jobs: &[JobView],
        cluster: &Cluster,
        _scratch: &mut AllocScratch,
        out: &mut Vec<Allocation>,
    ) {
        out.clear();
        out.extend(self.allocate(jobs, cluster));
    }
}

// ---------------------------------------------------------------------
// Optimus (§4.1)
// ---------------------------------------------------------------------

/// Which task type a candidate addition grants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    AddWorker,
    AddPs,
}

/// Warm-started per-job prediction cache, replacing the PR-2
/// `HashMap<(p, w), f64>` memo.
///
/// The grant loop only ever asks for three points per job — the current
/// configuration and its two one-step neighbours — and only moves along
/// single-step transitions: after a grant the new `t_now` is exactly the
/// neighbour just priced, and a stale-capacity re-derivation re-asks for
/// the configuration it already holds. Three scalars per job therefore
/// capture every hit the hash memo ever had, without SipHash or
/// per-round map allocations, and the model-evaluation count (what
/// `alloc.marginal_gain_evals` reports) is identical to the memo's miss
/// count.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CandCache {
    valid: bool,
    p: u32,
    w: u32,
    t_now: f64,
    t_worker: f64,
    t_ps: f64,
    /// Dominant-share resource units of one worker / one PS against the
    /// cluster capacity — both are round constants per job, so they are
    /// priced once per round instead of twice per heap pop.
    dom_worker: f64,
    dom_ps: f64,
}

impl CandCache {
    /// Brings the cache to `alloc`'s configuration. When the loop moved
    /// one step from the cached configuration, the new `t_now` is the
    /// neighbour already priced; the two new neighbours always need a
    /// model evaluation (the greedy path never revisits them).
    fn refresh(&mut self, job: &JobView, alloc: &Allocation, evals: &mut u64) {
        if self.valid && self.p == alloc.ps && self.w == alloc.workers {
            return;
        }
        let t_now = if self.valid && alloc.ps == self.p + 1 && alloc.workers == self.w {
            self.t_ps
        } else if self.valid && alloc.ps == self.p && alloc.workers == self.w + 1 {
            self.t_worker
        } else {
            *evals += 1;
            job.remaining_time(alloc.ps, alloc.workers)
        };
        *evals += 2;
        self.t_worker = job.remaining_time(alloc.ps, alloc.workers + 1);
        self.t_ps = job.remaining_time(alloc.ps + 1, alloc.workers);
        self.t_now = t_now;
        self.p = alloc.ps;
        self.w = alloc.workers;
        self.valid = true;
    }
}

/// Reusable working state for [`OptimusAllocator::allocate_into`]: the
/// lazy heap's storage, per-job generation stamps, the warm-started
/// prediction caches and the starter-order buffer all persist across
/// rounds, so a steady-state round performs no heap allocation at all.
#[derive(Debug, Default)]
pub struct AllocScratch {
    caches: Vec<CandCache>,
    versions: Vec<u32>,
    heap: BinaryHeap<Candidate>,
    /// Starter-grant order: job indices ascending by `(id, index)`.
    order: Vec<usize>,
}

impl AllocScratch {
    /// Clears per-round state, keeping every buffer's capacity.
    fn reset(&mut self, jobs: usize) {
        self.caches.clear();
        self.caches.resize(jobs, CandCache::default());
        self.versions.clear();
        self.versions.resize(jobs, 0);
        self.order.clear();
    }

    /// Total reserved capacity, for growth detection (a warm round must
    /// leave this unchanged — see the `sched.round_allocs` counter).
    pub(crate) fn footprint(&self) -> usize {
        self.caches.capacity()
            + self.versions.capacity()
            + self.heap.capacity()
            + self.order.capacity()
    }
}

/// Max-heap entry: gain of the best addition for one job. Ordered by
/// `(gain, job id)` — the id tie-break (smaller id wins among equal
/// gains) makes the pop sequence, and therefore the whole greedy grant
/// order, independent of job insertion order. Packed to 32 bytes
/// (`u32` index and generation stamp) because every sift moves it.
#[derive(Debug)]
struct Candidate {
    gain: f64,
    job: JobId,
    job_idx: u32,
    action: Action,
    version: u32,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.gain.total_cmp(&other.gain).is_eq() && self.job == other.job
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.job.cmp(&self.job))
    }
}

/// The marginal-gain allocator of §4.1.
#[derive(Debug, Clone)]
pub struct OptimusAllocator {
    /// Gain multiplier for jobs still in their "beginning state"
    /// (progress below [`Self::young_progress`]); the paper's default
    /// experiments use 1.0 and §6.3 evaluates 0.95.
    priority_factor: f64,
    /// Progress below which a job counts as young.
    young_progress: f64,
    /// Telemetry sink (disabled by default): `alloc.rounds`,
    /// `alloc.marginal_gain_evals`, and per-grant decision records.
    tel: Telemetry,
}

impl Default for OptimusAllocator {
    fn default() -> Self {
        OptimusAllocator {
            priority_factor: 1.0,
            young_progress: 0.1,
            tel: Telemetry::disabled(),
        }
    }
}

impl OptimusAllocator {
    /// Sets the §4.1 priority factor (e.g. 0.95).
    pub fn with_priority_factor(mut self, factor: f64) -> Self {
        self.priority_factor = factor;
        self
    }

    /// Attaches a telemetry handle. Each `allocate` call then counts as
    /// one `alloc.rounds`, reports its marginal-gain evaluations
    /// (`alloc.marginal_gain_evals` counts prediction-cache *misses* —
    /// actual speed-model evaluations — not candidate considerations),
    /// the lazy-heap traffic (`alloc.heap_pops` pops of which
    /// `alloc.stale_skips` were discarded by generation stamp), and
    /// records an [`TraceEvent::AllocGrant`] per granted task plus one
    /// [`TraceEvent::AllocRound`] summary.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }

    /// Sets the progress fraction below which the factor applies.
    pub fn with_young_progress(mut self, progress: f64) -> Self {
        self.young_progress = progress;
        self
    }

    /// Resource units of a demand along its dominant share against the
    /// cluster capacity (§4.1's normalization denominator), or 0.0 when
    /// no dimension applies.
    fn dominant_units(demand: &ResourceVec, capacity: &ResourceVec) -> f64 {
        demand
            .dominant_share(capacity)
            .map(|(kind, _)| demand.get(kind))
            .unwrap_or(0.0)
    }

    /// Marginal gain (time reduction per unit dominant resource) of the
    /// best feasible addition for a job, if any. All remaining-time
    /// values come from the job's warm-started [`CandCache`], so a
    /// configuration already priced this round costs nothing.
    fn best_candidate(
        &self,
        job: &JobView,
        cache: &mut CandCache,
        alloc: &Allocation,
        remaining: &ResourceVec,
        evals: &mut u64,
    ) -> Option<(f64, Action)> {
        cache.refresh(job, alloc, evals);
        let t_now = cache.t_now;
        let mut best: Option<(f64, Action)> = None;

        let mut consider = |action: Action, demand: &ResourceVec, dominant: f64, t_next: f64| {
            if !demand.fits_within(remaining) {
                return;
            }
            if dominant <= 0.0 {
                return;
            }
            let reduction = if t_now.is_infinite() && t_next.is_finite() {
                // From unable-to-run to running: treat as a very large
                // but finite gain so these additions happen first.
                f64::MAX / 4.0
            } else {
                t_now - t_next
            };
            let mut gain = reduction / dominant;
            if job.progress < self.young_progress {
                gain *= self.priority_factor;
            }
            match best {
                Some((g, _)) if g >= gain => {}
                _ => best = Some((gain, action)),
            }
        };

        let t_worker = cache.t_worker;
        let (dom_worker, dom_ps) = (cache.dom_worker, cache.dom_ps);
        consider(Action::AddWorker, &job.worker_profile, dom_worker, t_worker);
        let t_ps = cache.t_ps;
        consider(Action::AddPs, &job.ps_profile, dom_ps, t_ps);
        best
    }

    /// One job's grant counts re-derived *independently of every other
    /// job*: start at the (1, 1) starter and climb by
    /// [`Self::best_candidate`] — the exact grant rule and the exact
    /// `gain <= 0.0` stop predicate of [`Self::allocate_with`] — but
    /// with capacity checks against the round's *total* free capacity
    /// instead of the shrinking shared `remaining`.
    ///
    /// Marginal gains never read `remaining` (they are priced from the
    /// job's own model and the constant cluster capacity), so whenever
    /// the full greedy run answers every `fits_within` query
    /// affirmatively it is a prefix-interleaving of these solo chains
    /// and produces bit-identical counts. The delta-round engine proves
    /// that premise after the fact with [`certificate_check`];
    /// this returns `None` when the climb itself leaves the
    /// total-capacity envelope (the certificate would fail), sending
    /// the caller to the full path.
    pub(crate) fn solo_climb(
        &self,
        job: &JobView,
        total_available: &ResourceVec,
        capacity: &ResourceVec,
        cache: &mut CandCache,
        evals: &mut u64,
        mut why: Option<&mut Option<AllocWhy>>,
    ) -> Option<(u32, u32)> {
        if !job.unit_demand().fits_within(total_available) {
            // The starter may have been skipped under contention; that
            // is exactly a failed capacity query, so fall back.
            return None;
        }
        *cache = CandCache::default();
        cache.dom_worker = Self::dominant_units(&job.worker_profile, capacity);
        cache.dom_ps = Self::dominant_units(&job.ps_profile, capacity);
        let mut alloc = Allocation {
            job: job.id,
            ps: 1,
            workers: 1,
        };
        loop {
            let Some((gain, action)) =
                self.best_candidate(job, cache, &alloc, total_available, evals)
            else {
                return Some((alloc.ps, alloc.workers));
            };
            if gain <= 0.0 {
                // NaN gains compare false here, exactly as in the heap
                // loop's break predicate: the climb keeps granting.
                return Some((alloc.ps, alloc.workers));
            }
            match action {
                Action::AddWorker => alloc.workers += 1,
                Action::AddPs => alloc.ps += 1,
            }
            if let Some(out) = why.as_mut() {
                // Provenance (never read back by the climb): the last
                // winning gain; a solo climb beats no rival, so
                // runners-up stay empty.
                **out = Some(AllocWhy {
                    gain,
                    action: match action {
                        Action::AddWorker => "worker".to_string(),
                        Action::AddPs => "ps".to_string(),
                    },
                    dom_worker: cache.dom_worker,
                    dom_ps: cache.dom_ps,
                    young: job.progress < self.young_progress,
                    priority_factor: self.priority_factor,
                    runners_up: Vec::new(),
                });
            }
            if !alloc.demand(job).fits_within(total_available) {
                // This job alone outgrew the whole cluster (possible
                // only with degenerate models, e.g. NaN gains): the
                // certificate is guaranteed to fail, so bail now —
                // this also bounds the loop, since any non-zero
                // profile must eventually leave the envelope.
                return None;
            }
        }
    }

    /// The full §4.1 greedy loop, writing rows into `out` and reusing
    /// `scratch` across rounds. Once both are warm this performs no heap
    /// allocation (with a disabled telemetry handle; enabled handles
    /// record per-grant trace events, which allocate).
    pub fn allocate_with(
        &self,
        jobs: &[JobView],
        cluster: &Cluster,
        scratch: &mut AllocScratch,
        out: &mut Vec<Allocation>,
    ) {
        let _span = self
            .tel
            .is_enabled()
            .then(|| self.tel.span("alloc.allocate"));
        let round = self.tel.incr("alloc.rounds");
        let mut granted = 0u64;
        let mut evals = 0u64;
        let mut heap_pops = 0u64;
        let mut stale_skips = 0u64;
        let capacity = cluster.total_capacity();
        let mut remaining = cluster.total_available();
        scratch.reset(jobs.len());
        out.clear();
        out.extend(jobs.iter().map(|j| Allocation {
            job: j.id,
            ps: 0,
            workers: 0,
        }));
        let allocs = out;

        // Starvation avoidance: one worker + one PS per job while space
        // lasts, in submission (job-id) order — ids are assigned at
        // submission, so this matches the paper regardless of how the
        // caller ordered the views.
        scratch.order.extend(0..jobs.len());
        if !jobs.windows(2).all(|w| w[0].id <= w[1].id) {
            scratch.order.sort_unstable_by_key(|&i| (jobs[i].id, i));
        }
        for &i in &scratch.order {
            let unit = jobs[i].unit_demand();
            if unit.fits_within(&remaining) {
                allocs[i].ps = 1;
                allocs[i].workers = 1;
                remaining -= unit;
            }
        }

        // Greedy marginal-gain loop over the lazy max-heap. The initial
        // candidates are collected into the heap's own buffer and
        // heapified in one O(n) pass instead of n sift-ups.
        let AllocScratch {
            caches,
            versions,
            heap,
            ..
        } = scratch;
        let mut buf = std::mem::take(heap).into_vec();
        buf.clear();
        for (i, job) in jobs.iter().enumerate() {
            if allocs[i].workers == 0 {
                continue; // not even the starter unit fit
            }
            let cache = &mut caches[i];
            cache.dom_worker = Self::dominant_units(&job.worker_profile, &capacity);
            cache.dom_ps = Self::dominant_units(&job.ps_profile, &capacity);
            if let Some((gain, action)) =
                self.best_candidate(job, cache, &allocs[i], &remaining, &mut evals)
            {
                buf.push(Candidate {
                    gain,
                    job: job.id,
                    job_idx: i as u32,
                    action,
                    version: 0,
                });
            }
        }
        *heap = BinaryHeap::from(buf);

        // Provenance: one slot per job, overwritten on every grant so
        // the job's *last* winning gain (the decision that fixed its
        // final count) survives. Allocated only when provenance is on,
        // so the common path stays allocation-free.
        let prov = self.tel.provenance_enabled();
        let mut why: Vec<Option<AllocWhy>> = if prov {
            vec![None; jobs.len()]
        } else {
            Vec::new()
        };

        // Each round of the loop treats the heap top in place: a grant
        // (or a stale-capacity re-derivation) overwrites the top entry
        // with the job's next candidate and lets it sift down once,
        // instead of a full pop followed by a push — the pop order, and
        // hence the grant sequence, is unchanged because the replaced
        // entry is exactly what the push would have re-inserted.
        // (Written as `loop` + inner scope rather than `while let` so
        // the provenance runner-up scan can read the heap between
        // iterations, after the `PeekMut` borrow ends.)
        loop {
            let mut winner: Option<usize> = None;
            {
                let Some(mut top) = heap.peek_mut() else {
                    break;
                };
                heap_pops += 1;
                let idx = top.job_idx as usize;
                if top.version != versions[idx] {
                    stale_skips += 1;
                    std::collections::binary_heap::PeekMut::pop(top);
                    continue; // stale
                }
                if top.gain <= 0.0 {
                    break; // max-heap ⇒ no positive gains remain
                }
                let job = &jobs[idx];
                let demand = match top.action {
                    Action::AddWorker => job.worker_profile,
                    Action::AddPs => job.ps_profile,
                };
                if !demand.fits_within(&remaining) {
                    // Capacity shrank since this entry was computed;
                    // re-derive the best feasible candidate now.
                    versions[idx] += 1;
                    if let Some((gain, action)) = self.best_candidate(
                        job,
                        &mut caches[idx],
                        &allocs[idx],
                        &remaining,
                        &mut evals,
                    ) {
                        top.gain = gain;
                        top.action = action;
                        top.version = versions[idx];
                    } else {
                        std::collections::binary_heap::PeekMut::pop(top);
                    }
                    continue;
                }
                match top.action {
                    Action::AddWorker => allocs[idx].workers += 1,
                    Action::AddPs => allocs[idx].ps += 1,
                }
                remaining -= demand;
                granted += 1;
                if self.tel.is_enabled() {
                    self.tel.record(TraceEvent::AllocGrant {
                        round,
                        job: job.id.0,
                        action: match top.action {
                            Action::AddWorker => "worker".to_string(),
                            Action::AddPs => "ps".to_string(),
                        },
                        gain: top.gain,
                        ps: allocs[idx].ps,
                        workers: allocs[idx].workers,
                    });
                }
                if prov {
                    why[idx] = Some(AllocWhy {
                        gain: top.gain,
                        action: match top.action {
                            Action::AddWorker => "worker".to_string(),
                            Action::AddPs => "ps".to_string(),
                        },
                        dom_worker: caches[idx].dom_worker,
                        dom_ps: caches[idx].dom_ps,
                        young: job.progress < self.young_progress,
                        priority_factor: self.priority_factor,
                        runners_up: Vec::new(),
                    });
                    winner = Some(idx);
                }
                versions[idx] += 1;
                if let Some((gain, action)) =
                    self.best_candidate(job, &mut caches[idx], &allocs[idx], &remaining, &mut evals)
                {
                    top.gain = gain;
                    top.action = action;
                    top.version = versions[idx];
                } else {
                    std::collections::binary_heap::PeekMut::pop(top);
                }
            }
            if let Some(idx) = winner {
                // Read-only scan for the strongest live rivals the
                // grant beat. Runs between heap operations and never
                // feeds back into the loop, so the grant sequence is
                // untouched.
                let runners_up = top_runners_up(heap, versions, idx);
                if let Some(entry) = why[idx].as_mut() {
                    entry.runners_up = runners_up;
                }
            }
        }
        if prov {
            for (i, entry) in why.into_iter().enumerate() {
                self.tel
                    .why_alloc(jobs[i].id.0, allocs[i].ps, allocs[i].workers, entry);
            }
        }
        if self.tel.is_enabled() {
            // `alloc.marginal_gain_evals` counts actual speed-model
            // evaluations (cache misses), not candidate considerations.
            self.tel.add("alloc.marginal_gain_evals", evals);
            self.tel.add("alloc.heap_pops", heap_pops);
            self.tel.add("alloc.stale_skips", stale_skips);
            self.tel.record(TraceEvent::AllocRound {
                round,
                jobs: jobs.len(),
                granted,
                evals,
            });
        }
    }
}

impl ResourceAllocator for OptimusAllocator {
    fn allocate(&self, jobs: &[JobView], cluster: &Cluster) -> Vec<Allocation> {
        let mut out = Vec::new();
        self.allocate_with(jobs, cluster, &mut AllocScratch::default(), &mut out);
        out
    }

    fn allocate_into(
        &self,
        jobs: &[JobView],
        cluster: &Cluster,
        scratch: &mut AllocScratch,
        out: &mut Vec<Allocation>,
    ) {
        self.allocate_with(jobs, cluster, scratch, out);
    }
}

/// Headroom certificate for the uncontended-independence theorem
/// behind delta rounds (returns [`Certificate::Holds`] exactly when it
/// holds): if, for every resource kind,
///
/// ```text
/// Σ_jobs demand_k + 2·max_unit_k + slop_k  ≤  total_available_k
/// ```
///
/// then every `fits_within` query the full greedy run would ask against
/// its shrinking `remaining` vector passes, and therefore the run
/// degenerates into an interleaving of per-job solo climbs
/// ([`OptimusAllocator::solo_climb`]) whose final counts are
/// bit-identical to the full run's.
///
/// Why: marginal gains never read `remaining` — they are priced from
/// the job's own speed model and the round-constant cluster capacity —
/// so `remaining` influences the run only through boolean `fits_within`
/// filters (starter grants and candidate feasibility). Suppose some
/// query failed; take the first. Up to that point no query failed, so
/// the run is a prefix-interleaving of solo chains and
/// `remaining_k ≥ total_k − Σ demand_k − drift_k`. Every queried demand
/// is one worker *or* one ps profile of some job, hence componentwise
/// ≤ `max_unit`; the certificate leaves `2·max_unit + slop` of headroom
/// and `slop` dominates the float drift of ~10⁴ sequential
/// subtractions (each ≤ ulp(total) ≈ total·2.2e-16), so the query
/// cannot have failed — contradiction. The factor 2 (rather than 1)
/// keeps the margin comfortable for the paired starter grant, which
/// subtracts a worker and a ps unit between queries. The lazy heap's
/// break at `top.gain ≤ 0` fires exactly when every live chain has
/// reached its solo stop (heap property: top ≤ 0 ⇒ all entries ≤ 0).
///
/// `counts` maps a view index to its final `(ps, workers)`.
/// The per-term detail beyond the verdict exists for provenance
/// ([`optimus_telemetry::DeltaWhy`] cites the binding/failing term);
/// it never feeds back into any decision.
pub(crate) fn certificate_check(
    jobs: &[JobView],
    mut counts: impl FnMut(usize) -> (u32, u32),
    total_available: &ResourceVec,
) -> Certificate {
    let mut used = [0.0f64; 4];
    let mut max_unit = [0.0f64; 4];
    for (i, job) in jobs.iter().enumerate() {
        let (ps, workers) = counts(i);
        for (k, kind) in ResourceKind::ALL.iter().enumerate() {
            let w = job.worker_profile.get(*kind);
            let p = job.ps_profile.get(*kind);
            used[k] += w * f64::from(workers) + p * f64::from(ps);
            max_unit[k] = max_unit[k].max(w).max(p);
        }
    }
    let mut min_slack = f64::MAX;
    let mut min_term = "none";
    for (k, kind) in ResourceKind::ALL.iter().enumerate() {
        // A resource no profile touches (e.g. GPU on a CPU-only mix)
        // cannot constrain any climb or fits query: exempt it, or a
        // zero-capacity kind would fail on slop alone. NaNs in a
        // profile make `used` NaN and fall through to the check below.
        if used[k] == 0.0 && max_unit[k] == 0.0 {
            continue;
        }
        let total = total_available.get(*kind);
        let slop = total.abs() * 1e-9 + 1e-9;
        let lhs = used[k] + 2.0 * max_unit[k] + slop;
        // Written so that a NaN anywhere fails the certificate.
        let holds = lhs <= total;
        if !holds {
            return Certificate::Fails {
                term: kind_label(*kind),
                used: used[k],
                max_unit: max_unit[k],
                total,
                // Exactly-rounded subtraction keeps the sign of the
                // true difference, so a failing term always reports
                // slack ≤ 0 (or NaN).
                slack: total - lhs,
            };
        }
        let slack = total - lhs;
        if slack < min_slack {
            min_slack = slack;
            min_term = kind_label(*kind);
        }
    }
    Certificate::Holds {
        slack: min_slack,
        term: min_term,
    }
}

/// The outcome of one [`certificate_check`], with the term that
/// decided it.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Certificate {
    /// Every applicable term held; `slack` / `term` describe the
    /// *binding* (smallest-slack) kind. `slack` is `f64::MAX` when no
    /// kind applied at all.
    Holds {
        /// Headroom of the binding term: `total − (used + 2·max_unit
        /// + slop)`.
        slack: f64,
        /// The binding term's resource kind label (`"none"` when no
        /// kind applied).
        term: &'static str,
    },
    /// The first failing term, with its full inputs.
    Fails {
        /// The failing term's resource kind label.
        term: &'static str,
        /// Resources the candidate rows use on that kind.
        used: f64,
        /// Largest single-task demand on that kind.
        max_unit: f64,
        /// Cluster total on that kind.
        total: f64,
        /// The (non-positive or NaN) slack.
        slack: f64,
    },
}

/// Stable label for a certificate term's resource kind.
pub(crate) fn kind_label(kind: ResourceKind) -> &'static str {
    match kind {
        ResourceKind::Cpu => "cpu",
        ResourceKind::Gpu => "gpu",
        ResourceKind::MemoryGb => "mem_gb",
        ResourceKind::BandwidthGbps => "bandwidth_gbps",
    }
}

/// The strongest live rivals the winning grant beat, best first:
/// heap entries whose generation stamp is current, excluding the
/// winner's own (freshly re-derived) entry and non-positive gains.
fn top_runners_up(
    heap: &BinaryHeap<Candidate>,
    versions: &[u32],
    winner_idx: usize,
) -> Vec<RunnerUp> {
    use optimus_telemetry::provenance::TOP_RUNNERS_UP;
    let mut best: Vec<&Candidate> = Vec::with_capacity(TOP_RUNNERS_UP + 1);
    for c in heap.iter() {
        let idx = c.job_idx as usize;
        if idx == winner_idx || c.version != versions[idx] || c.gain <= 0.0 {
            continue;
        }
        let pos = best.partition_point(|b| (*b).cmp(c) == Ordering::Greater);
        if pos < TOP_RUNNERS_UP {
            best.insert(pos, c);
            best.truncate(TOP_RUNNERS_UP);
        }
    }
    best.iter()
        .map(|c| RunnerUp {
            job: c.job.0,
            gain: c.gain,
            action: match c.action {
                Action::AddWorker => "worker".to_string(),
                Action::AddPs => "ps".to_string(),
            },
        })
        .collect()
}

// ---------------------------------------------------------------------
// DRF baseline (§6.1)
// ---------------------------------------------------------------------

/// Dominant Resource Fairness via progressive filling, with the paper's
/// 1:1 ps:worker task pairs. Work-conserving by default — the paper:
/// "DRF is work-conserving and allocates as many resources to a job as
/// possible" — but bounded at `max_request_multiple ×` each job's
/// request (a real resource manager will not inflate a job two orders
/// of magnitude past what it asked for).
#[derive(Debug, Clone)]
pub struct DrfAllocator {
    /// When true, stop granting a job units once it reaches its
    /// `requested_units` exactly.
    pub respect_requests: bool,
    /// Work-conservation bound: a job never receives more than this
    /// multiple of its request.
    pub max_request_multiple: u32,
}

impl Default for DrfAllocator {
    fn default() -> Self {
        DrfAllocator {
            respect_requests: false,
            max_request_multiple: 4,
        }
    }
}

impl ResourceAllocator for DrfAllocator {
    fn allocate(&self, jobs: &[JobView], cluster: &Cluster) -> Vec<Allocation> {
        let capacity = cluster.total_capacity();
        let mut remaining = cluster.total_available();
        let mut allocs: Vec<Allocation> = jobs
            .iter()
            .map(|j| Allocation {
                job: j.id,
                ps: 0,
                workers: 0,
            })
            .collect();
        let mut shares = vec![0.0f64; jobs.len()];
        let mut blocked = vec![false; jobs.len()];

        loop {
            // Progressive filling: lowest dominant share first.
            let next = (0..jobs.len())
                .filter(|&i| !blocked[i])
                .min_by(|&a, &b| shares[a].total_cmp(&shares[b]));
            let Some(i) = next else { break };
            let job = &jobs[i];
            let cap = if self.respect_requests {
                job.requested_units
            } else {
                job.requested_units
                    .saturating_mul(self.max_request_multiple)
            };
            if allocs[i].workers >= cap.max(1) {
                blocked[i] = true;
                continue;
            }
            let unit = job.unit_demand();
            if !unit.fits_within(&remaining) {
                blocked[i] = true;
                continue;
            }
            allocs[i].ps += 1;
            allocs[i].workers += 1;
            remaining -= unit;
            let usage = allocs[i].demand(job);
            shares[i] = usage
                .dominant_share(&capacity)
                .map(|(_, s)| s)
                .unwrap_or(f64::INFINITY);
        }
        allocs
    }
}

// ---------------------------------------------------------------------
// FIFO baseline (§2.3)
// ---------------------------------------------------------------------

/// First-in-first-out allocation (the Spark-style default the paper
/// cites in §2.3): jobs receive their full fixed request in submission
/// order; once a request no longer fits, later jobs wait — the classic
/// head-of-line blocking that size-aware schedulers avoid.
#[derive(Debug, Clone, Default)]
pub struct FifoAllocator;

impl ResourceAllocator for FifoAllocator {
    fn allocate(&self, jobs: &[JobView], cluster: &Cluster) -> Vec<Allocation> {
        let mut remaining = cluster.total_available();
        let mut allocs: Vec<Allocation> = jobs
            .iter()
            .map(|j| Allocation {
                job: j.id,
                ps: 0,
                workers: 0,
            })
            .collect();
        // JobIds are assigned in submission order.
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by_key(|&i| jobs[i].id);
        for i in order {
            let job = &jobs[i];
            let unit = job.unit_demand();
            for _ in 0..job.requested_units.max(1) {
                if !unit.fits_within(&remaining) {
                    break;
                }
                allocs[i].ps += 1;
                allocs[i].workers += 1;
                remaining -= unit;
            }
            if allocs[i].workers == 0 {
                // Head-of-line blocking: FIFO does not skip ahead.
                break;
            }
        }
        allocs
    }
}

// ---------------------------------------------------------------------
// Tetris baseline (§6.1)
// ---------------------------------------------------------------------

/// Tetris-style allocation: grant 1:1 task pairs one at a time to the
/// job with the best combined packing-alignment and
/// shortest-remaining-time score, up to each job's requested units (the
/// paper feeds Tetris its duration estimates from Optimus' own models).
#[derive(Debug, Clone)]
pub struct TetrisAllocator {
    /// Relative weight of the SRTF term against the packing term
    /// (Tetris' recommended equal weighting after normalization).
    pub srtf_weight: f64,
    /// Work-conserving backfill bound, as a multiple of each job's
    /// request (see [`DrfAllocator::max_request_multiple`]).
    pub max_request_multiple: u32,
}

impl Default for TetrisAllocator {
    fn default() -> Self {
        TetrisAllocator {
            srtf_weight: 1.0,
            max_request_multiple: 4,
        }
    }
}

impl ResourceAllocator for TetrisAllocator {
    fn allocate(&self, jobs: &[JobView], cluster: &Cluster) -> Vec<Allocation> {
        let mut remaining = cluster.total_available();
        let mut allocs: Vec<Allocation> = jobs
            .iter()
            .map(|j| Allocation {
                job: j.id,
                ps: 0,
                workers: 0,
            })
            .collect();

        // Remaining-time estimate at the requested configuration, from
        // the Optimus estimators (∞ when the model predicts no speed).
        let durations: Vec<f64> = jobs
            .iter()
            .map(|j| j.remaining_time(j.requested_units.max(1), j.requested_units.max(1)))
            .collect();
        let min_finite = durations
            .iter()
            .cloned()
            .filter(|d| d.is_finite() && *d > 0.0)
            .fold(f64::INFINITY, f64::min);

        // Phase 1: grant by packing + SRTF score up to each job's
        // request. The SRTF term is the *ratio* of the shortest job's
        // remaining time to this job's (1 for the shortest, →0 for very
        // long jobs), so it stays discriminative even when one job
        // dwarfs the rest; ties break toward shorter duration, then id.
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (i, job) in jobs.iter().enumerate() {
                if allocs[i].workers >= job.requested_units {
                    continue;
                }
                let unit = job.unit_demand();
                if !unit.fits_within(&remaining) {
                    continue;
                }
                // Packing score: alignment of the unit's demand with the
                // remaining cluster resources, normalized.
                let align =
                    unit.alignment(&remaining) / (unit.norm() * remaining.norm()).max(1e-12);
                // SRTF score: shorter jobs first.
                let d = durations[i];
                let srtf = if d.is_finite() && d > 0.0 && min_finite.is_finite() {
                    (min_finite / d).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let score = align + self.srtf_weight * srtf;
                let better = match best {
                    None => true,
                    Some((j, s)) => {
                        score > s + 1e-12
                            || ((score - s).abs() <= 1e-12
                                && durations[i].total_cmp(&durations[j]).is_lt())
                    }
                };
                if better {
                    best = Some((i, score));
                }
            }
            let Some((i, _)) = best else { break };
            allocs[i].ps += 1;
            allocs[i].workers += 1;
            remaining -= jobs[i].unit_demand();
        }
        // Phase 2: work-conserving backfill, fewest units first — an
        // idle cluster tail would otherwise serialize the long jobs —
        // bounded at the request multiple.
        loop {
            let next = (0..jobs.len())
                .filter(|&i| {
                    let cap = jobs[i]
                        .requested_units
                        .saturating_mul(self.max_request_multiple)
                        .max(1);
                    allocs[i].workers < cap && jobs[i].unit_demand().fits_within(&remaining)
                })
                .min_by_key(|&i| allocs[i].workers);
            let Some(i) = next else { break };
            allocs[i].ps += 1;
            allocs[i].workers += 1;
            remaining -= jobs[i].unit_demand();
        }
        allocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::SpeedModel;
    use optimus_ps::PsJobModel;
    use optimus_workload::{ModelKind, TrainingMode};

    /// A JobView whose speed model is fit from the ground truth of the
    /// given model kind.
    fn make_job(id: u64, kind: ModelKind, remaining: f64, progress: f64) -> JobView {
        let profile = kind.profile();
        let truth = PsJobModel::new(profile, TrainingMode::Synchronous);
        let mut speed = SpeedModel::new(TrainingMode::Synchronous, profile.batch_size as f64);
        for (p, w) in [(1, 1), (2, 2), (4, 4), (8, 8), (4, 8), (8, 4), (12, 6)] {
            speed.record(p, w, truth.speed(p, w));
        }
        speed.refit().unwrap();
        JobView {
            id: JobId(id),
            worker_profile: optimus_workload::job::default_container(),
            ps_profile: optimus_workload::job::default_container(),
            remaining_work: remaining,
            speed,
            progress,
            requested_units: 6,
        }
    }

    fn total_demand(allocs: &[Allocation], jobs: &[JobView]) -> ResourceVec {
        allocs
            .iter()
            .zip(jobs.iter())
            .fold(ResourceVec::zero(), |acc, (a, j)| acc + a.demand(j))
    }

    #[test]
    fn optimus_respects_capacity() {
        let cluster = Cluster::paper_testbed();
        let jobs: Vec<JobView> = (0..6)
            .map(|i| make_job(i, ModelKind::ResNet50, 10_000.0, 0.5))
            .collect();
        let allocs = OptimusAllocator::default().allocate(&jobs, &cluster);
        let used = total_demand(&allocs, &jobs);
        assert!(used.fits_within(&cluster.total_capacity()));
        // Everyone got at least the starter unit on this big cluster.
        assert!(allocs.iter().all(|a| a.ps >= 1 && a.workers >= 1));
    }

    #[test]
    fn optimus_gives_more_to_jobs_with_more_remaining_work() {
        // Two identical jobs, one with 10× the remaining work: the
        // marginal gain of speeding up the long job is larger, so it
        // must receive at least as many tasks.
        let cluster = Cluster::paper_testbed();
        let jobs = vec![
            make_job(0, ModelKind::ResNet50, 50_000.0, 0.5),
            make_job(1, ModelKind::ResNet50, 5_000.0, 0.5),
        ];
        let allocs = OptimusAllocator::default().allocate(&jobs, &cluster);
        let tasks = |a: &Allocation| a.ps + a.workers;
        assert!(
            tasks(&allocs[0]) >= tasks(&allocs[1]),
            "long job {:?} vs short job {:?}",
            allocs[0],
            allocs[1]
        );
    }

    #[test]
    fn optimus_stops_at_diminishing_returns() {
        // A single sync job on a huge cluster: Optimus must stop adding
        // tasks once gains go non-positive, long before the cluster is
        // exhausted (more workers eventually slow sync training, §3.2).
        let cluster = Cluster::homogeneous(100, ResourceVec::new(64.0, 0.0, 256.0, 10.0));
        let jobs = vec![make_job(0, ModelKind::ResNet50, 10_000.0, 0.5)];
        let allocs = OptimusAllocator::default().allocate(&jobs, &cluster);
        let total_tasks = allocs[0].ps + allocs[0].workers;
        let max_units = (cluster
            .total_capacity()
            .get(optimus_cluster::ResourceKind::Cpu)
            / 5.0) as u32;
        assert!(
            total_tasks < max_units / 2,
            "Optimus used {total_tasks} of {max_units} possible tasks"
        );
        assert!(total_tasks >= 2);
    }

    #[test]
    fn priority_factor_damps_young_jobs() {
        let cluster = Cluster::paper_testbed();
        // Identical jobs; job 1 is young.
        let mut jobs = vec![
            make_job(0, ModelKind::ResNet50, 10_000.0, 0.5),
            make_job(1, ModelKind::ResNet50, 10_000.0, 0.01),
        ];
        jobs[1].progress = 0.01;
        let allocs = OptimusAllocator::default()
            .with_priority_factor(0.5) // exaggerated for test visibility
            .allocate(&jobs, &cluster);
        let tasks = |a: &Allocation| a.ps + a.workers;
        assert!(tasks(&allocs[0]) >= tasks(&allocs[1]));
    }

    #[test]
    fn drf_equalizes_dominant_shares() {
        let cluster = Cluster::paper_testbed();
        let jobs: Vec<JobView> = (0..4)
            .map(|i| make_job(i, ModelKind::Seq2Seq, 10_000.0, 0.5))
            .collect();
        let allocs = DrfAllocator::default().allocate(&jobs, &cluster);
        // Identical jobs ⇒ equal units (within one).
        let units: Vec<u32> = allocs.iter().map(|a| a.workers).collect();
        let max = units.iter().max().unwrap();
        let min = units.iter().min().unwrap();
        assert!(max - min <= 1, "units {units:?}");
        // Work-conserving: the cluster is essentially full.
        let used = total_demand(&allocs, &jobs);
        let cap = cluster.total_capacity();
        assert!(
            used.get(optimus_cluster::ResourceKind::Cpu)
                > 0.85 * cap.get(optimus_cluster::ResourceKind::Cpu),
            "DRF should fill the cluster: used {used}"
        );
    }

    #[test]
    fn drf_respects_requests_when_asked() {
        let cluster = Cluster::paper_testbed();
        let jobs: Vec<JobView> = (0..2)
            .map(|i| make_job(i, ModelKind::Seq2Seq, 10_000.0, 0.5))
            .collect();
        let allocs = DrfAllocator {
            respect_requests: true,
            ..DrfAllocator::default()
        }
        .allocate(&jobs, &cluster);
        assert!(allocs.iter().all(|a| a.workers <= 6));
    }

    #[test]
    fn tetris_prefers_short_jobs() {
        // A small cluster that fits only one job's full request: the
        // short job must win it.
        let cluster = Cluster::homogeneous(1, ResourceVec::new(65.0, 0.0, 260.0, 10.0));
        let jobs = vec![
            make_job(0, ModelKind::ResNet50, 100_000.0, 0.5), // long
            make_job(1, ModelKind::ResNet50, 1_000.0, 0.5),   // short
        ];
        let allocs = TetrisAllocator::default().allocate(&jobs, &cluster);
        assert!(
            allocs[1].workers > allocs[0].workers,
            "short {:?} long {:?}",
            allocs[1],
            allocs[0]
        );
    }

    #[test]
    fn tetris_meets_requests_then_backfills() {
        // Requests are met first; leftover capacity is backfilled (work
        // conservation), so a lone job on a big cluster gets ≥ request.
        let cluster = Cluster::paper_testbed();
        let jobs = vec![make_job(0, ModelKind::CnnRand, 100.0, 0.5)];
        let allocs = TetrisAllocator::default().allocate(&jobs, &cluster);
        assert!(allocs[0].workers >= 6, "{:?}", allocs[0]);
        assert_eq!(allocs[0].ps, allocs[0].workers, "1:1 task pairs");

        // Under contention the request cap binds before backfill: two
        // jobs on a cluster fitting exactly 12 units → both at request.
        let tight = Cluster::homogeneous(1, ResourceVec::new(121.0, 0.0, 250.0, 6.0));
        let jobs = vec![
            make_job(0, ModelKind::CnnRand, 100.0, 0.5),
            make_job(1, ModelKind::CnnRand, 100_000.0, 0.5),
        ];
        let allocs = TetrisAllocator::default().allocate(&jobs, &tight);
        assert!(allocs[0].workers >= allocs[1].workers, "short job first");
    }

    #[test]
    fn fifo_blocks_head_of_line() {
        // Room for ~2 full requests: job 0 and 1 get theirs, job 2 gets
        // nothing even though a smaller grant would fit — FIFO does not
        // skip ahead.
        let cluster = Cluster::homogeneous(1, ResourceVec::new(125.0, 0.0, 500.0, 10.0));
        let jobs: Vec<JobView> = (0..3)
            .map(|i| make_job(i, ModelKind::Seq2Seq, 10_000.0, 0.5))
            .collect();
        let allocs = FifoAllocator.allocate(&jobs, &cluster);
        assert_eq!(allocs[0].workers, 6);
        assert_eq!(allocs[1].workers, 6);
        assert!(allocs[2].workers < 6, "{:?}", allocs[2]);
    }

    #[test]
    fn fifo_orders_by_submission() {
        let cluster = Cluster::homogeneous(1, ResourceVec::new(65.0, 0.0, 260.0, 4.0));
        // Views arrive out of id order; FIFO must still favor JobId(0).
        let jobs = vec![
            make_job(5, ModelKind::Seq2Seq, 10.0, 0.9),
            make_job(0, ModelKind::Seq2Seq, 10_000.0, 0.1),
        ];
        let allocs = FifoAllocator.allocate(&jobs, &cluster);
        let by_id = |id: u64| allocs.iter().find(|a| a.job == JobId(id)).unwrap();
        assert!(by_id(0).workers >= by_id(5).workers);
    }

    #[test]
    fn empty_inputs() {
        let cluster = Cluster::paper_testbed();
        assert!(OptimusAllocator::default()
            .allocate(&[], &cluster)
            .is_empty());
        assert!(DrfAllocator::default().allocate(&[], &cluster).is_empty());
        assert!(TetrisAllocator::default()
            .allocate(&[], &cluster)
            .is_empty());
    }

    #[test]
    fn overloaded_cluster_pauses_latecomers() {
        // A cluster that fits exactly two starter units: jobs 2+ get
        // nothing.
        let cluster = Cluster::homogeneous(1, ResourceVec::new(20.0, 0.0, 40.0, 2.0));
        let jobs: Vec<JobView> = (0..4)
            .map(|i| make_job(i, ModelKind::ResNet50, 10_000.0, 0.5))
            .collect();
        let allocs = OptimusAllocator::default().allocate(&jobs, &cluster);
        assert_eq!(allocs[0].workers, 1);
        assert_eq!(allocs[1].workers, 1);
        assert_eq!(allocs[2].workers, 0);
        assert_eq!(allocs[3].workers, 0);
    }
}
