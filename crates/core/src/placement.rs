//! Task placement (§4.2) and the baseline placers.
//!
//! Theorem 1: for a synchronous job in a homogeneous cluster, the
//! speed-optimal placement uses the *fewest* servers that can host the
//! job, with PS and workers spread *evenly* across them. Optimus'
//! placer applies the induced heuristic to every job: sort servers by
//! free capacity, jobs smallest-first (anti-starvation), and for each
//! job find the smallest prefix of servers that fits an even spread.
//!
//! The baselines place the way their schedulers do in the paper's
//! testbed: [`SpreadPlacer`] imitates Kubernetes' default load-balancing
//! spreading (DRF baseline), [`PackPlacer`] imitates Tetris'
//! fragmentation-minimizing packing.

use crate::allocation::Allocation;
use crate::scheduler::{JobPlacement, JobView};
use optimus_cluster::{Cluster, ResourceKind, ResourceVec, ServerId};
use optimus_ps::TaskCounts;
use optimus_telemetry::provenance::MAX_REJECTIONS;
use optimus_telemetry::{PlaceReject, PlaceWhy, Telemetry, TraceEvent};
use optimus_workload::JobId;
use std::collections::HashMap;

/// Per-job provenance collector for the probe/shrink loop: every
/// rejected candidate, tagged by reason. Disabled it records nothing,
/// so the hot path pays one predictable branch per rejection.
#[derive(Debug, Default)]
struct RejectLog {
    enabled: bool,
    total: u64,
    rejected: Vec<PlaceReject>,
}

impl RejectLog {
    fn reset(&mut self) {
        self.total = 0;
        self.rejected.clear();
    }

    fn push(&mut self, reject: PlaceReject) {
        if !self.enabled {
            return;
        }
        self.total += 1;
        if self.rejected.len() < MAX_REJECTIONS {
            self.rejected.push(reject);
        }
    }
}

/// Synthesizes the placement side of a replayed decision from a stored
/// layout: nothing was re-packed, so there are no rejections to report.
pub(crate) fn replayed_place_why(
    placement: &[(ServerId, TaskCounts)],
    alloc_ps: u32,
    alloc_w: u32,
) -> PlaceWhy {
    let ps: u32 = placement.iter().map(|(_, c)| c.ps).sum();
    let workers: u32 = placement.iter().map(|(_, c)| c.workers).sum();
    PlaceWhy {
        ps,
        workers,
        servers: placement.len() as u64,
        shrunk: (alloc_ps + alloc_w).saturating_sub(ps + workers),
        replayed: true,
        rejections: 0,
        rejected: Vec::new(),
    }
}

/// One-multiply hasher for `JobId` keys. Job ids are sequential small
/// integers, so a Fibonacci-multiply spread gives collision-free
/// buckets at a fraction of SipHash's cost; the scheduling hot path
/// rebuilds its id → row maps every round, making their hashing cost a
/// per-round tax. Only maps private to this crate use it.
#[derive(Default)]
pub(crate) struct JobIdHasher(u64);

impl std::hash::Hasher for JobIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // `JobId`'s derived `Hash` hashes its `u64` via `write_u64`;
        // nothing else reaches these maps, but stay correct anyway.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

pub(crate) type JobIdBuildHasher = std::hash::BuildHasherDefault<JobIdHasher>;

/// Arena-backed placement map: one flat `(server, counts)` arena plus a
/// job-id → span table. Clearing keeps both the arena's and the table's
/// capacity, so steady-state rounds rebuild placements without a single
/// heap allocation — unlike the former `HashMap<JobId, Vec<…>>`, which
/// re-allocated one `Vec` per placed job per round.
#[derive(Debug, Clone, Default)]
pub struct PlacementStore {
    arena: Vec<(ServerId, TaskCounts)>,
    /// Job id → `(start, end)` span into `arena` (last insert wins).
    spans: HashMap<JobId, (u32, u32), JobIdBuildHasher>,
    /// Start offset of the span currently being built, if any.
    open: Option<(JobId, u32)>,
}

impl PlacementStore {
    /// Drops all placements, keeping capacity.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.spans.clear();
        self.open = None;
    }

    /// Number of placed jobs.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no job is placed.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Starts a new span for `id`; pair with [`Self::commit_span`].
    pub(crate) fn begin_span(&mut self, id: JobId) {
        self.open = Some((id, self.arena.len() as u32));
    }

    /// Appends one server's task counts to the open span.
    pub(crate) fn push_task(&mut self, sid: ServerId, counts: TaskCounts) {
        debug_assert!(self.open.is_some(), "push_task outside a span");
        self.arena.push((sid, counts));
    }

    /// Closes the open span and records it for its job.
    pub(crate) fn commit_span(&mut self) {
        let (id, start) = self.open.take().expect("commit_span without begin_span");
        self.spans.insert(id, (start, self.arena.len() as u32));
    }

    /// Inserts (or replaces) a job's placement wholesale.
    pub fn insert(&mut self, id: JobId, placement: &[(ServerId, TaskCounts)]) {
        self.begin_span(id);
        self.arena.extend_from_slice(placement);
        self.commit_span();
    }

    /// The placement of one job, if it was placed.
    pub fn get(&self, id: JobId) -> Option<&[(ServerId, TaskCounts)]> {
        self.spans
            .get(&id)
            .map(|&(s, e)| &self.arena[s as usize..e as usize])
    }

    /// True when the job has a placement.
    pub fn contains(&self, id: JobId) -> bool {
        self.spans.contains_key(&id)
    }

    /// Iterates `(job, placement)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, &[(ServerId, TaskCounts)])> {
        self.spans
            .iter()
            .map(move |(&id, &(s, e))| (id, &self.arena[s as usize..e as usize]))
    }

    /// Copies the placements out into the map form of [`TaskPlacer::place`].
    pub fn to_map(&self) -> HashMap<JobId, JobPlacement> {
        self.iter().map(|(id, p)| (id, p.to_vec())).collect()
    }

    /// Total reserved capacity, for growth detection.
    pub(crate) fn footprint(&self) -> usize {
        self.arena.capacity() + self.spans.capacity()
    }

    /// Makes `self` an exact copy of `other`, keeping `self`'s buffer
    /// capacity (the delta round's store round-trip).
    pub(crate) fn copy_from(&mut self, other: &Self) {
        self.arena.clone_from(&other.arena);
        self.spans.clone_from(&other.spans);
        self.open = None;
    }
}

/// Order-independent equality: same jobs, same per-job placements.
impl PartialEq for PlacementStore {
    fn eq(&self, other: &Self) -> bool {
        self.spans.len() == other.spans.len() && self.iter().all(|(id, p)| other.get(id) == Some(p))
    }
}
impl Eq for PlacementStore {}

impl FromIterator<(JobId, JobPlacement)> for PlacementStore {
    fn from_iter<T: IntoIterator<Item = (JobId, JobPlacement)>>(iter: T) -> Self {
        let mut store = PlacementStore::default();
        for (id, p) in iter {
            store.insert(id, &p);
        }
        store
    }
}

/// Reusable working state for [`TaskPlacer::place_into`]: the
/// incremental [`FreeIndex`], the per-job packing buffers and the
/// smallest-first order all persist across rounds.

#[derive(Debug, Default)]
pub struct PlaceScratch {
    index: FreeIndex,
    chosen: Vec<ServerId>,
    counts: Vec<TaskCounts>,
    bal: BalanceBufs,
    order: Vec<usize>,
    norms: Vec<f64>,
}

/// The near-even fallback's working set: per-attempt availability
/// copies and the sorted deal keys (see
/// [`OptimusPlacer::balanced_counts`]).
#[derive(Debug, Default)]
struct BalanceBufs {
    avail: Vec<ResourceVec>,
    deal: Vec<u128>,
}

/// Proof summary of a failed [`OptimusPlacer::balanced_counts`]
/// attempt, per demand kind (0 = colocated pair, 1 = lone PS, 2 = lone
/// worker): whether any deal of that kind found no server, and the
/// minimum pre-deal free CPU among that kind's winners. A probe on one
/// more server replays the failed attempt's exact trajectory — and
/// fails the same way — unless the added server *deviates*: it fits a
/// kind that failed outright, or fits one and ties/beats its weakest
/// recorded winner (ties go to the added server, which holds the
/// highest deal index). Those are exactly the per-kind aggregates, so
/// the full event list never needs recording (see the window loop in
/// [`OptimusPlacer::place_with`]).
#[derive(Debug, Clone, Copy)]
struct DealLog {
    fail: [bool; 3],
    min_cpu: [f64; 3],
}

impl Default for DealLog {
    fn default() -> Self {
        DealLog {
            fail: [false; 3],
            min_cpu: [f64::INFINITY; 3],
        }
    }
}

impl DealLog {
    fn reset(&mut self) {
        *self = DealLog {
            fail: [false; 3],
            min_cpu: [f64::INFINITY; 3],
        };
    }

    /// Would a server with these fits and this free CPU change the
    /// recorded trajectory?
    fn deviates(&self, fits: [bool; 3], cpu: f64) -> bool {
        (0..3).any(|d| fits[d] && (self.fail[d] || cpu >= self.min_cpu[d]))
    }
}

/// Packs a deal entry — `(remaining CPU, local server index)` — into one
/// integer whose natural order is `(cpu by total_cmp, index)`: the upper
/// bits are the CPU's order-preserving bit mapping (exactly
/// `f64::total_cmp`'s), the low 32 the index. The deal array stays
/// sorted descending on this key, so its reposition binary search
/// compares plain integers within one contiguous array instead of
/// chasing every probe through `avail`.
#[inline]
fn deal_key(cpu: f64, idx: u32) -> u128 {
    let mut b = cpu.to_bits() as i64;
    b ^= (((b >> 63) as u64) >> 1) as i64;
    let mono = (b as u64) ^ (1 << 63);
    ((mono as u128) << 32) | idx as u128
}

impl PlaceScratch {
    /// Total reserved capacity, for growth detection.
    pub(crate) fn footprint(&self) -> usize {
        self.index.footprint()
            + self.chosen.capacity()
            + self.counts.capacity()
            + self.bal.avail.capacity()
            + self.order.capacity()
            + self.bal.deal.capacity()
            + self.norms.capacity()
    }
}

/// A task-placement policy.
pub trait TaskPlacer {
    /// Maps allocated jobs to concrete per-server task counts. Jobs that
    /// cannot be placed are omitted (they pause this interval, §4.2).
    ///
    /// Placement is computed against the cluster's *free* capacity; the
    /// caller is responsible for the cluster reflecting any resources
    /// that are genuinely unavailable.
    fn place(
        &self,
        allocations: &[Allocation],
        jobs: &[JobView],
        cluster: &Cluster,
    ) -> HashMap<JobId, JobPlacement>;

    /// Scratch-reusing variant for the steady-state round loop: writes
    /// placements into `out` (cleared first) and may keep working state
    /// in `scratch` between rounds. The default delegates to
    /// [`Self::place`]; placers with a hot path override it to run
    /// allocation-free once `scratch`/`out` are warm.
    fn place_into(
        &self,
        allocations: &[Allocation],
        jobs: &[JobView],
        cluster: &Cluster,
        _scratch: &mut PlaceScratch,
        out: &mut PlacementStore,
    ) {
        out.clear();
        for (id, p) in self.place(allocations, jobs, cluster) {
            out.insert(id, &p);
        }
    }
}

/// Orders job indices smallest-demand-first (§4.2: "we place jobs in
/// increasing order of their resource demand ... to avoid job
/// starvation") into a caller-owned buffer. `(norm, id)` is a total
/// order for unique ids, so the unstable sort is deterministic.
pub(crate) fn smallest_first_into(
    allocations: &[Allocation],
    jobs: &[JobView],
    order: &mut Vec<usize>,
    norms: &mut Vec<f64>,
) {
    order.clear();
    order.extend(
        (0..allocations.len()).filter(|&i| allocations[i].ps > 0 && allocations[i].workers > 0),
    );
    // Each demand norm is priced once up front; the comparator reads
    // cached keys instead of recomputing the norm O(n log n) times.
    norms.clear();
    norms.resize(allocations.len(), 0.0);
    for &i in order.iter() {
        norms[i] = allocations[i].demand(&jobs[i]).norm();
    }
    order.sort_unstable_by(|&a, &b| {
        norms[a]
            .total_cmp(&norms[b])
            .then(jobs[a].id.cmp(&jobs[b].id))
    });
}

/// Allocating wrapper around [`smallest_first_into`].
pub(crate) fn smallest_first(allocations: &[Allocation], jobs: &[JobView]) -> Vec<usize> {
    let mut order = Vec::new();
    smallest_first_into(allocations, jobs, &mut order, &mut Vec::new());
    order
}

// ---------------------------------------------------------------------
// Optimus placer (§4.2, Theorem 1)
// ---------------------------------------------------------------------

/// Incremental free-capacity index: the placer's view of per-server
/// free resources, kept sorted by free CPU (descending, server id as
/// the tie-break) *incrementally*. A committed placement repositions
/// only the ≤k servers it touched (binary search + splice) instead of
/// re-sorting all servers per job, and no `Cluster` clone is needed —
/// a scheduling round is O(tasks-placed × log servers) in comparisons
/// rather than O(jobs × servers log servers).
///
/// Bookkeeping mirrors [`optimus_cluster::Server`] exactly
/// (`alloc += demand; free = cap.saturating_sub(alloc)`) so the free
/// values — and therefore every placement decision — are bit-identical
/// to the former clone-and-re-sort implementation.
#[derive(Debug, Default)]
struct FreeIndex {
    cap: Vec<ResourceVec>,
    alloc: Vec<ResourceVec>,
    free: Vec<ResourceVec>,
    /// [`server_key`]s sorted descending — i.e. servers by (free CPU
    /// desc, id asc), a total order since ids are unique. The key packs
    /// the server id in its low bits ([`key_server`] recovers it), so
    /// this one integer array *is* the order: binary searches and
    /// repositions touch a single contiguous array and nothing else
    /// needs to stay in sync.
    keys: Vec<u128>,
    /// Number of incremental repositions (→ `placement.index_updates`).
    updates: u64,
    /// The free vector the last rebuild sorted, and the keys it
    /// produced. The order depends only on the free values, and across
    /// steady-state rounds the cluster is usually unchanged — one slice
    /// equality check then replaces the full re-sort.
    sorted_free: Vec<ResourceVec>,
    sorted_keys: Vec<u128>,
}

/// [`deal_key`] for the free index's `(free CPU desc, id asc)` order:
/// the id is bit-inverted so a *descending* key order breaks CPU ties
/// ascending by id. `+ 0.0` collapses a `-0.0` free CPU onto `+0.0`,
/// which the index's former `partial_cmp` comparator treated as equal
/// (and `total_cmp` would not).
#[inline]
fn server_key(cpu: f64, sid: usize) -> u128 {
    deal_key(cpu + 0.0, !(sid as u32))
}

/// Recovers the server id a [`server_key`] packs.
#[inline]
fn key_server(key: u128) -> ServerId {
    ServerId(!(key as u32) as usize)
}

impl FreeIndex {
    /// Refills the index from `cluster`, keeping every buffer's
    /// capacity. `(free CPU, id)` is a total order for unique ids, so
    /// the unstable sort is deterministic.
    fn rebuild(&mut self, cluster: &Cluster) {
        let n = cluster.len();
        self.cap.clear();
        self.alloc.clear();
        self.free.clear();
        for s in cluster.servers() {
            self.cap.push(s.capacity());
            self.alloc.push(s.allocated());
            self.free.push(s.available());
        }
        self.keys.clear();
        if self.free == self.sorted_free {
            self.keys.extend_from_slice(&self.sorted_keys);
        } else {
            let free = &self.free;
            self.keys
                .extend((0..n).map(|i| server_key(free[i].get(ResourceKind::Cpu), i)));
            // Descending keys ⇔ the old (cpu desc via partial_cmp,
            // id asc) comparator, -0.0 included (see [`server_key`]).
            self.keys.sort_unstable_by(|a, b| b.cmp(a));
            self.sorted_free.clear();
            self.sorted_free.extend_from_slice(&self.free);
            self.sorted_keys.clear();
            self.sorted_keys.extend_from_slice(&self.keys);
        }
        self.updates = 0;
    }

    /// Total reserved capacity, for growth detection.
    fn footprint(&self) -> usize {
        self.cap.capacity()
            + self.alloc.capacity()
            + self.free.capacity()
            + self.keys.capacity()
            + self.sorted_free.capacity()
            + self.sorted_keys.capacity()
    }

    /// Binary search for the slot holding `(cpu, sid)` within the first
    /// `within` entries: keys are unique (ids break ties), so the
    /// partition point of the strictly-greater prefix lands exactly on
    /// the entry. Callers commit servers out of the prefix a job was
    /// packed into, which bounds the search to that prefix's length
    /// instead of the whole cluster.
    fn slot(&self, sid: ServerId, cpu: f64, within: usize) -> usize {
        let key = server_key(cpu, sid.0);
        let pos = self.keys[..within].partition_point(|&q| q > key);
        debug_assert_eq!(key_server(self.keys[pos]), sid, "slot() key out of sync");
        pos
    }

    /// Early-exit prefix scan: `Ok(k)` with the smallest k whose prefix
    /// of free capacity covers `demand` (per-server granularity may need
    /// a few more, probed by the caller), or — when even the full sum
    /// falls short — `Err(total_free)`. Prefix sums accumulate in sorted
    /// order, the exact addition sequence the former per-job prefix-sum
    /// pass produced, and free amounts are non-negative, so the scan
    /// succeeds if and only if `demand` fits the full (identically
    /// computed) total: most jobs pay only the few-element prefix
    /// instead of a full per-job fold over every server.
    fn k_min_or_total(&self, demand: &ResourceVec) -> Result<usize, ResourceVec> {
        let mut acc = ResourceVec::zero();
        for (j, &key) in self.keys.iter().enumerate() {
            acc += self.free[key_server(key).0];
            if demand.fits_within(&acc) {
                return Ok(j + 1);
            }
        }
        Err(acc)
    }

    /// Reserves `demand` on `sid` and repositions it in `order`. Free
    /// CPU only decreases on a commit, so the server's new slot is at
    /// or after its old one: binary-search the tail (which excludes
    /// `sid`, keeping the comparator consistent) and rotate the gap one
    /// step left — O(slots moved) instead of the former remove+insert
    /// pair's O(servers) memmoves, with an identical resulting order.
    fn commit(&mut self, sid: ServerId, demand: &ResourceVec, within: usize) {
        assert!(
            demand.fits_within(&self.free[sid.0]),
            "feasibility checked above"
        );
        let old = self.slot(sid, self.free[sid.0].get(ResourceKind::Cpu), within);
        self.alloc[sid.0] += *demand;
        self.free[sid.0] = self.cap[sid.0].saturating_sub(&self.alloc[sid.0]);
        let key = server_key(self.free[sid.0].get(ResourceKind::Cpu), sid.0);
        let at = old + 1 + self.keys[old + 1..].partition_point(|&q| q > key);
        self.keys[old] = key;
        self.keys[old..at].rotate_left(1);
        self.updates += 1;
    }
}

/// The Theorem-1 placer.
#[derive(Debug, Clone, Default)]
pub struct OptimusPlacer {
    /// Telemetry sink (disabled by default): `placement.packing_retries`
    /// and `placement.index_updates` counters plus per-job
    /// [`TraceEvent::Placement`] records.
    tel: Telemetry,
}

impl OptimusPlacer {
    /// Attaches a telemetry handle: shrink retries feed the
    /// `placement.packing_retries` counter, index repositions feed
    /// `placement.index_updates`, and every placed job records its
    /// layout.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }
    /// Commits a successful packing: reserves each chosen server's
    /// share in `index` and records the placement span in `out`. The
    /// `k`-prefix is copied into `chosen` only here, so a failed probe
    /// — the common case in the shrink-retry loop — costs no copy.
    fn commit_counts(
        job: &JobView,
        index: &mut FreeIndex,
        chosen: &mut Vec<ServerId>,
        counts: &[TaskCounts],
        out: &mut PlacementStore,
        k: usize,
    ) {
        chosen.clear();
        chosen.extend(index.keys[..k].iter().map(|&key| key_server(key)));
        out.begin_span(job.id);
        for (i, &sid) in chosen.iter().enumerate() {
            if counts[i].ps == 0 && counts[i].workers == 0 {
                continue;
            }
            let demand = job.worker_profile * counts[i].workers as f64
                + job.ps_profile * counts[i].ps as f64;
            // A commit only moves its server *down* and everything else
            // up by one slot, so each later chosen server still sits
            // inside the original k-prefix: the slot search stays
            // bounded by `k` for the whole loop.
            index.commit(sid, &demand, k);
            out.push_task(sid, counts[i]);
        }
        out.commit_span();
    }

    /// The exact Theorem-1 even split, if every server fits its share.
    /// Fills `counts` and returns true on success.
    ///
    /// An even split takes at most four distinct `(ps, workers)` shares
    /// (quotient vs quotient+1 per task kind), contiguous by
    /// construction — so the share demands are priced once per zone,
    /// not once per server, and the feasibility scan runs
    /// highest-index (least-free) servers first, where a failing probe
    /// exits on its first comparison instead of its last. The accepted
    /// set and the resulting counts are exactly the former per-server
    /// formulation's.
    fn even_counts(
        job: &JobView,
        alloc: &Allocation,
        free: &[ResourceVec],
        chosen: &[u128],
        counts: &mut Vec<TaskCounts>,
    ) -> bool {
        let kf = chosen.len() as u32;
        let (qp, rp) = (alloc.ps / kf, alloc.ps % kf);
        let (qw, rw) = (alloc.workers / kf, alloc.workers % kf);
        let share = |i: u32| TaskCounts {
            ps: qp + u32::from(i < rp),
            workers: qw + u32::from(i < rw),
        };
        let price =
            |c: TaskCounts| job.worker_profile * c.workers as f64 + job.ps_profile * c.ps as f64;
        let lo = rp.min(rw) as usize;
        let hi = rp.max(rw) as usize;
        let zones = [
            (0, lo, price(share(0))),
            (lo, hi, price(share(lo as u32))),
            (hi, chosen.len(), price(share(hi as u32))),
        ];
        for &(start, end, demand) in zones.iter().rev() {
            for &key in chosen[start..end].iter().rev() {
                if !demand.fits_within(&free[key_server(key).0]) {
                    return false;
                }
            }
        }
        counts.clear();
        counts.extend((0..kf).map(share));
        true
    }

    /// One deal of the near-even fallback: reserves `demand` on the
    /// server with the most remaining CPU that fits it, ties to the
    /// highest index (the semantics of a forward `max_by`, which keeps
    /// the *last* maximum).
    ///
    /// `deal` keeps the candidate positions sorted by
    /// `(remaining CPU desc, index desc)`, so the winner is the first
    /// fitting entry, and a deal repositions only the one server it
    /// drained (binary search + rotate, as in [`FreeIndex::commit`]).
    /// Availability only ever *shrinks* during a packing attempt, so an
    /// entry that fails a demand once fails it for the rest of the
    /// attempt: `cursors[which]` counts the leading known-failed
    /// entries for this demand and the scan starts past them. The
    /// former formulation rescanned and re-maxed all k servers for
    /// every task — O(tasks × k) per attempt, the single hottest loop
    /// of a full scheduling decision; with the cursors every entry
    /// fails every demand at most once per attempt.
    fn deal_one(
        avail: &mut [ResourceVec],
        deal: &mut [u128],
        demand: &ResourceVec,
        cursors: &mut [usize; 3],
        which: usize,
        log: &mut DealLog,
    ) -> Option<usize> {
        let Some(pos) = (cursors[which]..deal.len())
            .find(|&p| demand.fits_within(&avail[(deal[p] as u32) as usize]))
        else {
            // Every entry now fails this demand, hence for the rest of
            // the attempt: later same-demand deals exit immediately.
            cursors[which] = deal.len();
            log.fail[which] = true;
            return None;
        };
        // The entries scanned past just failed; they stay failed.
        cursors[which] = pos;
        let i = deal[pos] as u32;
        let won_cpu = avail[i as usize].get(ResourceKind::Cpu);
        if won_cpu < log.min_cpu[which] {
            log.min_cpu[which] = won_cpu;
        }
        avail[i as usize] -= *demand;
        // CPU only decreased: the new slot is at or after `pos`. Keys
        // are unique (the index breaks ties), so the partition point is
        // the old comparator's insertion point exactly.
        let key = deal_key(avail[i as usize].get(ResourceKind::Cpu), i);
        deal[pos] = key;
        let at = pos + 1 + deal[pos + 1..].partition_point(|&q| q > key);
        // The winner leaves `pos` for `at - 1`, shifting the entries
        // between down one slot. A known-failed prefix the winner
        // *exits* loses one slot to an unscanned entry shifting in, so
        // its cursor steps back; a prefix the winner stays inside is
        // untouched (the winner only shrank, so it still fails those
        // demands). `cursors[which]` was just set to `pos`, which the
        // rule never moves.
        for c in cursors.iter_mut() {
            if pos < *c && at > *c {
                *c -= 1;
            }
        }
        deal[pos..at].rotate_left(1);
        Some(i as usize)
    }

    /// Near-even fallback for heterogeneous servers: deal PS+worker
    /// *pairs* to the server with the most remaining CPU that fits the
    /// whole pair (Theorem 1's colocation principle), splitting a pair
    /// across two servers only when no server fits both; leftover
    /// unpaired tasks are dealt individually. Fills `counts` (using
    /// `avail` and `deal` as working space) and returns true on success.
    fn balanced_counts(
        job: &JobView,
        alloc: &Allocation,
        free: &[ResourceVec],
        chosen: &[u128],
        counts: &mut Vec<TaskCounts>,
        bufs: &mut BalanceBufs,
        log: &mut DealLog,
    ) -> bool {
        let BalanceBufs { avail, deal } = bufs;
        log.reset();
        avail.clear();
        avail.extend(chosen.iter().map(|&key| free[key_server(key).0]));
        counts.clear();
        counts.resize(chosen.len(), TaskCounts::default());

        // `chosen` is a prefix of the free index: sorted by free CPU
        // descending with ties index-*ascending*. [`Self::deal_one`]
        // wants ties index-descending (last-maximum semantics), so seed
        // the order and reverse every equal-CPU run.
        deal.clear();
        deal.extend(
            avail
                .iter()
                .enumerate()
                .map(|(i, a)| deal_key(a.get(ResourceKind::Cpu), i as u32)),
        );
        let mut run = 0;
        for i in 1..=deal.len() {
            if i == deal.len() || (deal[i] >> 32) != (deal[run] >> 32) {
                deal[run..i].reverse();
                run = i;
            }
        }

        // Known-failed prefix lengths, one per distinct demand:
        // colocated pair, lone PS, lone worker.
        let mut cursors = [0usize; 3];
        let pair_demand = job.ps_profile + job.worker_profile;
        let pairs = alloc.ps.min(alloc.workers);
        for _ in 0..pairs {
            if let Some(i) = Self::deal_one(avail, deal, &pair_demand, &mut cursors, 0, log) {
                counts[i].ps += 1;
                counts[i].workers += 1;
            } else {
                // No server fits the colocated pair: split it.
                let Some(i) = Self::deal_one(avail, deal, &job.ps_profile, &mut cursors, 1, log)
                else {
                    return false;
                };
                counts[i].ps += 1;
                let Some(i) =
                    Self::deal_one(avail, deal, &job.worker_profile, &mut cursors, 2, log)
                else {
                    return false;
                };
                counts[i].workers += 1;
            }
        }
        for _ in pairs..alloc.ps {
            let Some(i) = Self::deal_one(avail, deal, &job.ps_profile, &mut cursors, 1, log) else {
                return false;
            };
            counts[i].ps += 1;
        }
        for _ in pairs..alloc.workers {
            let Some(i) = Self::deal_one(avail, deal, &job.worker_profile, &mut cursors, 2, log)
            else {
                return false;
            };
            counts[i].workers += 1;
        }
        true
    }
}

impl OptimusPlacer {
    /// The full Theorem-1 pass, writing placements into `out` and
    /// reusing `scratch` across rounds. Once both are warm this performs
    /// no heap allocation (with a disabled telemetry handle).
    pub fn place_with(
        &self,
        allocations: &[Allocation],
        jobs: &[JobView],
        cluster: &Cluster,
        scratch: &mut PlaceScratch,
        out: &mut PlacementStore,
    ) {
        let _span = self.tel.is_enabled().then(|| self.tel.span("place.place"));
        let mut retries = 0u64;
        // One index rebuild per round; each job then pays only an
        // early-exit prefix scan plus log-time repositions for the
        // servers its placement touches (available CPU order, §4.2),
        // keeping placement fast even on the Fig-12 clusters
        // (16 000 nodes).
        let PlaceScratch {
            index,
            chosen,
            counts,
            bal,
            order,
            norms,
        } = scratch;
        let mut log = DealLog::default();
        let mut rej = RejectLog {
            enabled: self.tel.provenance_enabled(),
            ..RejectLog::default()
        };
        index.rebuild(cluster);
        out.clear();
        smallest_first_into(allocations, jobs, order, norms);
        for &i in order.iter() {
            let job = &jobs[i];
            rej.reset();
            let placed = Self::place_job(
                job,
                allocations[i],
                index,
                chosen,
                counts,
                bal,
                &mut log,
                out,
                &mut retries,
                &mut rej,
            );
            if let Some(alloc) = placed {
                if self.tel.is_enabled() {
                    let shrunk = (allocations[i].ps + allocations[i].workers)
                        .saturating_sub(alloc.ps + alloc.workers);
                    self.tel.record(TraceEvent::Placement {
                        job: job.id.0,
                        ps: alloc.ps,
                        workers: alloc.workers,
                        servers: out.get(job.id).map_or(0, |p| p.len()),
                        shrunk,
                    });
                }
            }
            // None: paused this interval (§4.2).
            self.record_place_why(job.id, &allocations[i], placed.as_ref(), out, &mut rej);
        }
        if retries > 0 {
            self.tel.add("placement.packing_retries", retries);
        }
        if index.updates > 0 {
            self.tel.add("placement.index_updates", index.updates);
        }
    }

    /// Emits the placement side of a job's why-record from a fresh
    /// probe/shrink run, draining the rejection log into it. A no-op
    /// unless provenance is on (the log is only `enabled` then).
    fn record_place_why(
        &self,
        id: JobId,
        requested: &Allocation,
        placed: Option<&Allocation>,
        out: &PlacementStore,
        rej: &mut RejectLog,
    ) {
        if !rej.enabled {
            return;
        }
        let (ps, workers, servers) = match placed {
            Some(a) => (a.ps, a.workers, out.get(id).map_or(0, |p| p.len()) as u64),
            None => (0, 0, 0),
        };
        self.tel.why_place(
            id.0,
            PlaceWhy {
                ps,
                workers,
                servers,
                shrunk: (requested.ps + requested.workers).saturating_sub(ps + workers),
                replayed: false,
                rejections: rej.total,
                rejected: std::mem::take(&mut rej.rejected),
            },
        );
    }

    /// Places one job — the probe/shrink loop of [`Self::place_with`],
    /// extracted so the delta path can replay clean prefixes and run
    /// only the tail. Commits the job's span into `out` (via
    /// [`Self::commit_counts`]) *iff* placement succeeds and returns the
    /// final — possibly shrunk — allocation; a failed placement makes no
    /// commits at all (`balanced_counts` mutates only its scratch
    /// copies), which is what lets the delta path treat a missing span
    /// as "skip on replay".
    #[allow(clippy::too_many_arguments)]
    fn place_job(
        job: &JobView,
        mut alloc: Allocation,
        index: &mut FreeIndex,
        chosen: &mut Vec<ServerId>,
        counts: &mut Vec<TaskCounts>,
        bal: &mut BalanceBufs,
        log: &mut DealLog,
        out: &mut PlacementStore,
        retries: &mut u64,
        rej: &mut RejectLog,
    ) -> Option<Allocation> {
        let pair_demand = job.ps_profile + job.worker_profile;
        loop {
            let demand = alloc.demand(job);
            // Smallest k whose prefix of free capacity covers the
            // demand; per-server granularity may need a few more.
            let k_min = match index.k_min_or_total(&demand) {
                Ok(k) => k,
                Err(total_free) => {
                    rej.push(PlaceReject::AggregateEarlyExit {
                        servers: index.keys.len() as u64,
                    });
                    // Shrink-on-unplaceable: the allocator reasons
                    // about aggregate capacity (constraint (7)), so
                    // per-server fragmentation can make the full
                    // allocation unplaceable. Rather than pausing a
                    // job that could run smaller (which deadlocks a
                    // lightly loaded cluster), shrink straight to
                    // what aggregate free capacity allows and retry.
                    while !alloc.demand(job).fits_within(&total_free)
                        && alloc.ps + alloc.workers > 2
                    {
                        if alloc.ps >= alloc.workers {
                            alloc.ps -= 1;
                        } else {
                            alloc.workers -= 1;
                        }
                    }
                    if !alloc.demand(job).fits_within(&total_free) {
                        return None;
                    }
                    continue;
                }
            };
            let k_max = (k_min + 8).min(index.keys.len());
            // Probe window: smallest k in k_min..=k_max whose
            // prefix packs the allocation (even split first, then
            // the near-even deal). A failed deal leaves its proof
            // transcript in `log`: the next probe adds exactly one
            // server — the (k+1)-th most free — and replays the
            // same trajectory to the same failure unless that
            // server would have beaten a recorded winner (it fits
            // the demand and has at least the winner's free CPU;
            // ties go to it as the highest deal index) or fits a
            // demand that found no server. Checking the transcript
            // is O(deals); re-running the deal is O(k + deals), so
            // the common all-probes-fail window of the shrink loop
            // collapses to one real attempt plus cheap skips.
            let mut log_valid = false;
            let mut placed_at_k = false;
            for k in k_min..=k_max {
                let prefix = &index.keys[..k];
                if Self::even_counts(job, &alloc, &index.free, prefix, counts) {
                    Self::commit_counts(job, index, chosen, counts, out, k);
                    placed_at_k = true;
                    break;
                }
                if log_valid {
                    let f = &index.free[key_server(index.keys[k - 1]).0];
                    let fits = [
                        pair_demand.fits_within(f),
                        job.ps_profile.fits_within(f),
                        job.worker_profile.fits_within(f),
                    ];
                    if !log.deviates(fits, f.get(ResourceKind::Cpu)) {
                        rej.push(PlaceReject::KPrefix { k: k as u64 });
                        continue;
                    }
                }
                let prefix = &index.keys[..k];
                if Self::balanced_counts(job, &alloc, &index.free, prefix, counts, bal, log) {
                    Self::commit_counts(job, index, chosen, counts, out, k);
                    placed_at_k = true;
                    break;
                }
                rej.push(PlaceReject::KPrefix { k: k as u64 });
                log_valid = true;
            }
            if placed_at_k {
                return Some(alloc);
            }
            // The whole configuration failed every probed prefix.
            rej.push(PlaceReject::Capacity {
                ps: alloc.ps,
                workers: alloc.workers,
            });
            if alloc.ps + alloc.workers <= 2 {
                return None;
            }
            if alloc.ps >= alloc.workers {
                alloc.ps -= 1;
            } else {
                alloc.workers -= 1;
            }
            *retries += 1;
        }
    }

    /// Delta-round placement: byte-identical to [`Self::place_with`],
    /// but reuses the previous round's decisions where the inputs
    /// provably match.
    ///
    /// `prev_sig`/`prev_store` must be the signature list and store this
    /// method produced on the previous round *against the same cluster
    /// state* — the caller passes empty ones when the cluster changed
    /// (the free index evolves as a function of cluster + commit
    /// sequence, so prefix replay is only sound with both fixed).
    /// `next_sig` receives this round's signature list.
    ///
    /// Two reuse tiers:
    /// - whole-list signature match → copy the previous store verbatim
    ///   and skip even the index rebuild (returns `true`);
    /// - else replay the longest matching signature prefix by committing
    ///   the recorded spans (identical index mutations, no probing), and
    ///   run the full probe/shrink machinery only from the first
    ///   mismatch on. A job in the prefix with no recorded span was
    ///   unplaced — a failed placement commits nothing, so skipping it
    ///   replays that too. Shrunk counts live in the spans, so replay
    ///   reproduces shrink outcomes while the signature carries the
    ///   *requested* counts, keeping the match honest.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn place_delta(
        &self,
        allocations: &[Allocation],
        jobs: &[JobView],
        cluster: &Cluster,
        scratch: &mut PlaceScratch,
        prev_sig: &[PlaceSig],
        prev_store: &PlacementStore,
        next_sig: &mut Vec<PlaceSig>,
        out: &mut PlacementStore,
    ) -> bool {
        let _span = self.tel.is_enabled().then(|| self.tel.span("place.place"));
        let PlaceScratch {
            index,
            chosen,
            counts,
            bal,
            order,
            norms,
        } = scratch;
        let prov = self.tel.provenance_enabled();
        smallest_first_into(allocations, jobs, order, norms);
        next_sig.clear();
        for &i in order.iter() {
            next_sig.push(PlaceSig::new(&jobs[i], &allocations[i], norms[i]));
        }
        if next_sig.as_slice() == prev_sig {
            out.copy_from(prev_store);
            if prov {
                for &i in order.iter() {
                    let job = &jobs[i];
                    if let Some(span) = out.get(job.id) {
                        self.tel.why_place(
                            job.id.0,
                            replayed_place_why(span, allocations[i].ps, allocations[i].workers),
                        );
                    }
                }
            }
            return true;
        }
        let matched = next_sig
            .iter()
            .zip(prev_sig.iter())
            .take_while(|(a, b)| a == b)
            .count();
        let mut retries = 0u64;
        let mut log = DealLog::default();
        let mut rej = RejectLog {
            enabled: prov,
            ..RejectLog::default()
        };
        index.rebuild(cluster);
        out.clear();
        for (pos, &i) in order.iter().enumerate() {
            let job = &jobs[i];
            if pos < matched {
                let Some(span) = prev_store.get(job.id) else {
                    continue; // was unplaced; stays unplaced
                };
                out.begin_span(job.id);
                let (mut ps, mut workers) = (0u32, 0u32);
                for &(sid, c) in span {
                    let demand = job.worker_profile * f64::from(c.workers)
                        + job.ps_profile * f64::from(c.ps);
                    index.commit(sid, &demand, index.keys.len());
                    out.push_task(sid, c);
                    ps += c.ps;
                    workers += c.workers;
                }
                out.commit_span();
                if self.tel.is_enabled() {
                    let shrunk =
                        (allocations[i].ps + allocations[i].workers).saturating_sub(ps + workers);
                    self.tel.record(TraceEvent::Placement {
                        job: job.id.0,
                        ps,
                        workers,
                        servers: span.len(),
                        shrunk,
                    });
                }
                if prov {
                    if let Some(span) = out.get(job.id) {
                        self.tel.why_place(
                            job.id.0,
                            replayed_place_why(span, allocations[i].ps, allocations[i].workers),
                        );
                    }
                }
                continue;
            }
            rej.reset();
            let placed = Self::place_job(
                job,
                allocations[i],
                index,
                chosen,
                counts,
                bal,
                &mut log,
                out,
                &mut retries,
                &mut rej,
            );
            if let Some(alloc) = placed {
                if self.tel.is_enabled() {
                    let shrunk = (allocations[i].ps + allocations[i].workers)
                        .saturating_sub(alloc.ps + alloc.workers);
                    self.tel.record(TraceEvent::Placement {
                        job: job.id.0,
                        ps: alloc.ps,
                        workers: alloc.workers,
                        servers: out.get(job.id).map_or(0, |p| p.len()),
                        shrunk,
                    });
                }
            }
            self.record_place_why(job.id, &allocations[i], placed.as_ref(), out, &mut rej);
        }
        if retries > 0 {
            self.tel.add("placement.packing_retries", retries);
        }
        if index.updates > 0 {
            self.tel.add("placement.index_updates", index.updates);
        }
        false
    }
}

/// Exact-value signature of one ordered placement input. Placement is a
/// pure function of the ordered `(job, allocation)` list plus the free
/// index, and it reads *only* the fields captured here — so two rounds
/// whose signature lists share a prefix (against the same cluster) make
/// bit-identical decisions over that prefix, and a whole-list match
/// makes the entire previous store reusable. Values compare exactly
/// (floats by bit pattern); nothing is hashed, so there are no
/// collisions to reason about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PlaceSig {
    id: JobId,
    /// [`smallest_first_into`] sort-key bits — pins the order tie-break.
    norm: u64,
    ps: u32,
    workers: u32,
    worker_profile: [u64; 4],
    ps_profile: [u64; 4],
}

impl PlaceSig {
    fn new(job: &JobView, alloc: &Allocation, norm: f64) -> Self {
        PlaceSig {
            id: job.id,
            norm: norm.to_bits(),
            ps: alloc.ps,
            workers: alloc.workers,
            worker_profile: profile_bits(&job.worker_profile),
            ps_profile: profile_bits(&job.ps_profile),
        }
    }
}

/// Bitwise image of a resource vector, for exact comparison.
fn profile_bits(v: &ResourceVec) -> [u64; 4] {
    let mut out = [0u64; 4];
    for (k, kind) in ResourceKind::ALL.iter().enumerate() {
        out[k] = v.get(*kind).to_bits();
    }
    out
}

impl TaskPlacer for OptimusPlacer {
    fn place(
        &self,
        allocations: &[Allocation],
        jobs: &[JobView],
        cluster: &Cluster,
    ) -> HashMap<JobId, JobPlacement> {
        let mut out = PlacementStore::default();
        self.place_with(
            allocations,
            jobs,
            cluster,
            &mut PlaceScratch::default(),
            &mut out,
        );
        out.to_map()
    }

    fn place_into(
        &self,
        allocations: &[Allocation],
        jobs: &[JobView],
        cluster: &Cluster,
        scratch: &mut PlaceScratch,
        out: &mut PlacementStore,
    ) {
        self.place_with(allocations, jobs, cluster, scratch, out);
    }
}

// ---------------------------------------------------------------------
// Load-balancing placer (Kubernetes default; DRF baseline)
// ---------------------------------------------------------------------

/// Places tasks one at a time, each on the server with the most free
/// CPU — the "load balancing way, according to the default behavior of
/// Kubernetes" used by the DRF baseline.
#[derive(Debug, Clone, Default)]
pub struct SpreadPlacer;

impl TaskPlacer for SpreadPlacer {
    fn place(
        &self,
        allocations: &[Allocation],
        jobs: &[JobView],
        cluster: &Cluster,
    ) -> HashMap<JobId, JobPlacement> {
        let mut scratch = cluster.clone();
        let mut out = HashMap::new();
        for (alloc, job) in allocations.iter().zip(jobs.iter()) {
            if alloc.ps == 0 || alloc.workers == 0 {
                continue;
            }
            if let Some(p) = place_tasks_by(job, alloc, &mut scratch, |server, _mine| {
                server.available().get(ResourceKind::Cpu)
            }) {
                out.insert(job.id, p);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Packing placer (Tetris baseline)
// ---------------------------------------------------------------------

/// Places tasks one at a time best-fit: the feasible server with the
/// *least* free capacity left, packing tasks onto as few servers as
/// possible to minimize resource fragmentation (§6.1's description of
/// Tetris). As a side effect a job's tasks colocate, which also earns
/// Tetris part of the communication-locality benefit the paper observes.
#[derive(Debug, Clone, Default)]
pub struct PackPlacer;

impl TaskPlacer for PackPlacer {
    fn place(
        &self,
        allocations: &[Allocation],
        jobs: &[JobView],
        cluster: &Cluster,
    ) -> HashMap<JobId, JobPlacement> {
        let mut scratch = cluster.clone();
        let mut out = HashMap::new();
        for (alloc, job) in allocations.iter().zip(jobs.iter()) {
            if alloc.ps == 0 || alloc.workers == 0 {
                continue;
            }
            // Keeping a job's footprint compact is the fragmentation-
            // minimizing behavior §6.1 ascribes to Tetris: strongly
            // prefer servers already hosting this job's tasks, then the
            // fullest feasible server.
            let placed = place_tasks_by(job, alloc, &mut scratch, |server, mine| {
                let own_bonus = if mine.contains_key(&server.id()) {
                    1e9
                } else {
                    0.0
                };
                own_bonus - server.available().get(ResourceKind::Cpu)
            });
            if let Some(p) = placed {
                out.insert(job.id, p);
            }
        }
        out
    }
}

/// Greedy per-task placement: each task goes to the feasible server
/// maximizing `score(server, tasks_this_job_already_has_per_server)`.
///
/// Mirrors Kubernetes semantics: tasks that do not fit stay "pending" —
/// the job runs with whatever subset was placed, as long as at least
/// one PS and one worker landed. Returns `None` (rolling back) only
/// when even that minimum is impossible.
fn place_tasks_by(
    job: &JobView,
    alloc: &Allocation,
    scratch: &mut Cluster,
    score: impl Fn(&optimus_cluster::Server, &HashMap<ServerId, TaskCounts>) -> f64,
) -> Option<JobPlacement> {
    let mut per_server: HashMap<ServerId, TaskCounts> = HashMap::new();
    let mut committed: Vec<(ServerId, ResourceVec)> = Vec::new();

    let place_one = |demand: &ResourceVec,
                     scratch: &mut Cluster,
                     per_server: &mut HashMap<ServerId, TaskCounts>,
                     committed: &mut Vec<(ServerId, ResourceVec)>,
                     is_ps: bool|
     -> bool {
        let target = scratch
            .servers()
            .filter(|s| s.can_fit(demand))
            .max_by(|a, b| {
                score(a, per_server)
                    .total_cmp(&score(b, per_server))
                    // Deterministic tie-break.
                    .then(b.id().cmp(&a.id()))
            })
            .map(|s| s.id());
        let Some(sid) = target else {
            return false;
        };
        scratch
            .server_mut(sid)
            .expect("id from iteration")
            .allocate(demand)
            .expect("can_fit checked");
        committed.push((sid, *demand));
        let entry = per_server
            .entry(sid)
            .or_insert(TaskCounts { ps: 0, workers: 0 });
        if is_ps {
            entry.ps += 1;
        } else {
            entry.workers += 1;
        }
        true
    };

    // Interleave PS and workers so a partially placed job still has both
    // task kinds.
    let mut placed_ps = 0u32;
    let mut placed_w = 0u32;
    for t in 0..(alloc.ps + alloc.workers) {
        let want_ps = (t % 2 == 0 && placed_ps < alloc.ps) || placed_w >= alloc.workers;
        let demand = if want_ps {
            &job.ps_profile
        } else {
            &job.worker_profile
        };
        if place_one(demand, scratch, &mut per_server, &mut committed, want_ps) {
            if want_ps {
                placed_ps += 1;
            } else {
                placed_w += 1;
            }
        } else {
            break; // remaining tasks stay pending
        }
    }

    if placed_ps == 0 || placed_w == 0 {
        // Roll back: not even the minimum viable pair landed.
        for (sid, demand) in committed {
            scratch
                .server_mut(sid)
                .expect("id from iteration")
                .release(&demand)
                .expect("releasing what we allocated");
        }
        return None;
    }
    let mut placement: JobPlacement = per_server.into_iter().collect();
    placement.sort_by_key(|(sid, _)| *sid);
    Some(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::SpeedModel;
    use optimus_workload::TrainingMode;

    fn job(id: u64) -> JobView {
        let mut speed = SpeedModel::new(TrainingMode::Synchronous, 64.0);
        for (p, w, f) in [
            (1, 1, 0.02),
            (2, 2, 0.04),
            (4, 4, 0.06),
            (8, 8, 0.07),
            (4, 8, 0.065),
        ] {
            speed.record(p, w, f);
        }
        speed.refit().unwrap();
        JobView {
            id: JobId(id),
            worker_profile: optimus_workload::job::default_container(),
            ps_profile: optimus_workload::job::default_container(),
            remaining_work: 1_000.0,
            speed,
            progress: 0.5,
            requested_units: 4,
        }
    }

    fn alloc(id: u64, ps: u32, workers: u32) -> Allocation {
        Allocation {
            job: JobId(id),
            ps,
            workers,
        }
    }

    /// Sums placed tasks and verifies they match the allocation.
    fn check_counts(p: &JobPlacement, a: &Allocation) {
        let ps: u32 = p.iter().map(|(_, c)| c.ps).sum();
        let w: u32 = p.iter().map(|(_, c)| c.workers).sum();
        assert_eq!(ps, a.ps);
        assert_eq!(w, a.workers);
    }

    #[test]
    fn optimus_uses_fewest_servers() {
        // 5 PS + 5 workers = 10 containers à 5 cores = 50 cores: more
        // than one 32-core server, so Theorem 1 mandates exactly two
        // servers with an even spread.
        let cluster = Cluster::paper_testbed();
        let jobs = vec![job(0)];
        let allocs = vec![alloc(0, 5, 5)];
        let placements = OptimusPlacer::default().place(&allocs, &jobs, &cluster);
        let p = placements.get(&JobId(0)).expect("placed");
        check_counts(p, &allocs[0]);
        assert_eq!(p.len(), 2, "theorem 1: fewest servers, evenly: {p:?}");
        // Even spread: 2-3 PS and 2-3 workers per server.
        for (_, c) in p {
            assert!((2..=3).contains(&c.ps), "{p:?}");
            assert!((2..=3).contains(&c.workers), "{p:?}");
        }
    }

    #[test]
    fn optimus_single_server_when_it_fits() {
        let cluster = Cluster::paper_testbed();
        let jobs = vec![job(0)];
        let allocs = vec![alloc(0, 2, 2)]; // 4 × 5 = 20 cores ≤ 32
        let placements = OptimusPlacer::default().place(&allocs, &jobs, &cluster);
        let p = placements.get(&JobId(0)).expect("placed");
        assert_eq!(p.len(), 1, "should fit on one server: {p:?}");
    }

    #[test]
    fn optimus_places_smallest_job_first() {
        // Cluster with room for the small job and only a shrunken big
        // job: the small job must get its full allocation first.
        let cluster = Cluster::homogeneous(1, ResourceVec::new(21.0, 0.0, 45.0, 2.0));
        let jobs = vec![job(0), job(1)];
        let allocs = vec![alloc(0, 4, 4), alloc(1, 1, 1)];
        let placements = OptimusPlacer::default().place(&allocs, &jobs, &cluster);
        let small = placements.get(&JobId(1)).expect("small job placed");
        check_counts(small, &allocs[1]);
        // The big job shrank to whatever still fits (at most one pair).
        if let Some(big) = placements.get(&JobId(0)) {
            let tasks: u32 = big.iter().map(|(_, c)| c.ps + c.workers).sum();
            assert!(tasks <= 2, "big job should be shrunken: {big:?}");
        }
    }

    #[test]
    fn optimus_shrinks_rather_than_pausing_solo_job() {
        // A lone job allocated beyond what fragmentation allows must
        // still run (with fewer tasks), not deadlock.
        let cluster = Cluster::homogeneous(2, ResourceVec::new(12.0, 0.0, 24.0, 1.0));
        let jobs = vec![job(0)];
        let allocs = vec![alloc(0, 4, 4)];
        let placements = OptimusPlacer::default().place(&allocs, &jobs, &cluster);
        let p = placements.get(&JobId(0)).expect("shrunken placement");
        let ps: u32 = p.iter().map(|(_, c)| c.ps).sum();
        let w: u32 = p.iter().map(|(_, c)| c.workers).sum();
        assert!(ps >= 1 && w >= 1);
        assert!(ps + w <= 4, "two servers × two 5-core tasks: {p:?}");
    }

    #[test]
    fn all_placers_respect_server_capacity() {
        let cluster = Cluster::paper_testbed();
        let jobs: Vec<JobView> = (0..4).map(job).collect();
        let allocs: Vec<Allocation> = (0..4).map(|i| alloc(i, 3, 3)).collect();
        for placer in [
            &OptimusPlacer::default() as &dyn TaskPlacer,
            &SpreadPlacer,
            &PackPlacer,
        ] {
            let placements = placer.place(&allocs, &jobs, &cluster);
            // Rebuild per-server usage and check capacities.
            let mut usage: HashMap<ServerId, ResourceVec> = HashMap::new();
            for (jid, p) in &placements {
                let j = jobs.iter().find(|j| j.id == *jid).unwrap();
                let a = allocs.iter().find(|a| a.job == *jid).unwrap();
                check_counts(p, a);
                for (sid, c) in p {
                    let d = j.worker_profile * c.workers as f64 + j.ps_profile * c.ps as f64;
                    *usage.entry(*sid).or_default() += d;
                }
            }
            for (sid, used) in usage {
                let cap = cluster.server(sid).unwrap().capacity();
                assert!(used.fits_within(&cap), "{sid}: {used} > {cap}");
            }
        }
    }

    #[test]
    fn spread_placer_balances_load() {
        let cluster = Cluster::homogeneous(4, ResourceVec::new(40.0, 0.0, 160.0, 4.0));
        let jobs = vec![job(0)];
        let allocs = vec![alloc(0, 4, 4)];
        let placements = SpreadPlacer.place(&allocs, &jobs, &cluster);
        let p = placements.get(&JobId(0)).unwrap();
        // Kubernetes-style spreading lands tasks on every server.
        assert_eq!(p.len(), 4, "{p:?}");
    }

    #[test]
    fn truly_unplaceable_job_is_omitted() {
        // Not even one 5-core container fits on a 4-core server.
        let cluster = Cluster::homogeneous(2, ResourceVec::new(4.0, 0.0, 24.0, 1.0));
        let jobs = vec![job(0)];
        let allocs = vec![alloc(0, 4, 4)];
        for placer in [
            &OptimusPlacer::default() as &dyn TaskPlacer,
            &SpreadPlacer,
            &PackPlacer,
        ] {
            let placements = placer.place(&allocs, &jobs, &cluster);
            assert!(placements.is_empty());
        }
    }

    #[test]
    fn baseline_placers_leave_excess_pending() {
        // Kubernetes semantics: place what fits, run with it.
        let cluster = Cluster::homogeneous(2, ResourceVec::new(12.0, 0.0, 48.0, 1.0));
        let jobs = vec![job(0)];
        let allocs = vec![alloc(0, 4, 4)]; // 8 tasks wanted, 4 fit
        for placer in [&SpreadPlacer as &dyn TaskPlacer, &PackPlacer] {
            let placements = placer.place(&allocs, &jobs, &cluster);
            let p = placements.get(&JobId(0)).expect("partial placement");
            let ps: u32 = p.iter().map(|(_, c)| c.ps).sum();
            let w: u32 = p.iter().map(|(_, c)| c.workers).sum();
            assert!(ps >= 1 && w >= 1);
            assert!(ps + w < 8, "must be partial: {p:?}");
        }
    }

    #[test]
    fn zero_allocations_are_skipped() {
        let cluster = Cluster::paper_testbed();
        let jobs = vec![job(0)];
        let allocs = vec![alloc(0, 0, 0)];
        for placer in [
            &OptimusPlacer::default() as &dyn TaskPlacer,
            &SpreadPlacer,
            &PackPlacer,
        ] {
            assert!(placer.place(&allocs, &jobs, &cluster).is_empty());
        }
    }
}
