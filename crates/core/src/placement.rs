//! Task placement (§4.2) and the baseline placers.
//!
//! Theorem 1: for a synchronous job in a homogeneous cluster, the
//! speed-optimal placement uses the *fewest* servers that can host the
//! job, with PS and workers spread *evenly* across them. Optimus'
//! placer applies the induced heuristic to every job: sort servers by
//! free capacity, jobs smallest-first (anti-starvation), and for each
//! job find the smallest prefix of servers that fits an even spread.
//!
//! The baselines place the way their schedulers do in the paper's
//! testbed: [`SpreadPlacer`] imitates Kubernetes' default load-balancing
//! spreading (DRF baseline), [`PackPlacer`] imitates Tetris'
//! fragmentation-minimizing packing.

use crate::allocation::Allocation;
use crate::scheduler::{JobPlacement, JobView};
use optimus_cluster::{Cluster, ResourceKind, ResourceVec, ServerId};
use optimus_ps::TaskCounts;
use optimus_telemetry::{Telemetry, TraceEvent};
use optimus_workload::JobId;
use std::collections::HashMap;

/// A task-placement policy.
pub trait TaskPlacer {
    /// Maps allocated jobs to concrete per-server task counts. Jobs that
    /// cannot be placed are omitted (they pause this interval, §4.2).
    ///
    /// Placement is computed against the cluster's *free* capacity; the
    /// caller is responsible for the cluster reflecting any resources
    /// that are genuinely unavailable.
    fn place(
        &self,
        allocations: &[Allocation],
        jobs: &[JobView],
        cluster: &Cluster,
    ) -> HashMap<JobId, JobPlacement>;
}

/// Orders job indices smallest-demand-first (§4.2: "we place jobs in
/// increasing order of their resource demand ... to avoid job
/// starvation").
pub(crate) fn smallest_first(allocations: &[Allocation], jobs: &[JobView]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..allocations.len())
        .filter(|&i| allocations[i].ps > 0 && allocations[i].workers > 0)
        .collect();
    order.sort_by(|&a, &b| {
        let da = allocations[a].demand(&jobs[a]).norm();
        let db = allocations[b].demand(&jobs[b]).norm();
        da.total_cmp(&db).then(jobs[a].id.cmp(&jobs[b].id))
    });
    order
}

// ---------------------------------------------------------------------
// Optimus placer (§4.2, Theorem 1)
// ---------------------------------------------------------------------

/// Incremental free-capacity index: the placer's view of per-server
/// free resources, kept sorted by free CPU (descending, server id as
/// the tie-break) *incrementally*. A committed placement repositions
/// only the ≤k servers it touched (binary search + splice) instead of
/// re-sorting all servers per job, and no `Cluster` clone is needed —
/// a scheduling round is O(tasks-placed × log servers) in comparisons
/// rather than O(jobs × servers log servers).
///
/// Bookkeeping mirrors [`optimus_cluster::Server`] exactly
/// (`alloc += demand; free = cap.saturating_sub(alloc)`) so the free
/// values — and therefore every placement decision — are bit-identical
/// to the former clone-and-re-sort implementation.
struct FreeIndex {
    cap: Vec<ResourceVec>,
    alloc: Vec<ResourceVec>,
    free: Vec<ResourceVec>,
    /// Server ids sorted by (free CPU desc, id asc) — a total order,
    /// since ids are unique.
    order: Vec<ServerId>,
    /// Number of incremental repositions (→ `placement.index_updates`).
    updates: u64,
}

impl FreeIndex {
    fn new(cluster: &Cluster) -> Self {
        let n = cluster.len();
        let mut cap = Vec::with_capacity(n);
        let mut alloc = Vec::with_capacity(n);
        let mut free = Vec::with_capacity(n);
        for s in cluster.servers() {
            cap.push(s.capacity());
            alloc.push(s.allocated());
            free.push(s.available());
        }
        let mut order: Vec<ServerId> = (0..n).map(ServerId).collect();
        order.sort_by(|a, b| {
            free[b.0]
                .get(ResourceKind::Cpu)
                .partial_cmp(&free[a.0].get(ResourceKind::Cpu))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        FreeIndex {
            cap,
            alloc,
            free,
            order,
            updates: 0,
        }
    }

    /// Binary search for the slot of key `(cpu, sid)` in `order`.
    /// `Ok` when `sid` sits there now, `Err` with the insertion point.
    fn slot(&self, sid: ServerId, cpu: f64) -> Result<usize, usize> {
        self.order.binary_search_by(|&probe| {
            let pcpu = self.free[probe.0].get(ResourceKind::Cpu);
            // Ascending in the sort key (cpu desc ⇒ compare reversed).
            cpu.partial_cmp(&pcpu)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(probe.0.cmp(&sid.0))
        })
    }

    /// Early-exit prefix scan: `Ok(k)` with the smallest k whose prefix
    /// of free capacity covers `demand` (per-server granularity may need
    /// a few more, probed by the caller), or — when even the full sum
    /// falls short — `Err(total_free)`. Prefix sums accumulate in sorted
    /// order, the exact addition sequence the former per-job prefix-sum
    /// pass produced, and free amounts are non-negative, so the scan
    /// succeeds if and only if `demand` fits the full (identically
    /// computed) total: most jobs pay only the few-element prefix
    /// instead of a full per-job fold over every server.
    fn k_min_or_total(&self, demand: &ResourceVec) -> Result<usize, ResourceVec> {
        let mut acc = ResourceVec::zero();
        for (j, sid) in self.order.iter().enumerate() {
            acc += self.free[sid.0];
            if demand.fits_within(&acc) {
                return Ok(j + 1);
            }
        }
        Err(acc)
    }

    /// Reserves `demand` on `sid` and repositions it in `order`.
    /// The stale slot is removed *before* `free` changes so the binary
    /// search comparator stays consistent with the array.
    fn commit(&mut self, sid: ServerId, demand: &ResourceVec) {
        assert!(
            demand.fits_within(&self.free[sid.0]),
            "feasibility checked above"
        );
        let old = self
            .slot(sid, self.free[sid.0].get(ResourceKind::Cpu))
            .expect("committed server is indexed");
        self.order.remove(old);
        self.alloc[sid.0] += *demand;
        self.free[sid.0] = self.cap[sid.0].saturating_sub(&self.alloc[sid.0]);
        let at = self
            .slot(sid, self.free[sid.0].get(ResourceKind::Cpu))
            .expect_err("server was removed above");
        self.order.insert(at, sid);
        self.updates += 1;
    }
}

/// The Theorem-1 placer.
#[derive(Debug, Clone, Default)]
pub struct OptimusPlacer {
    /// Telemetry sink (disabled by default): `placement.packing_retries`
    /// and `placement.index_updates` counters plus per-job
    /// [`TraceEvent::Placement`] records.
    tel: Telemetry,
}

impl OptimusPlacer {
    /// Attaches a telemetry handle: shrink retries feed the
    /// `placement.packing_retries` counter, index repositions feed
    /// `placement.index_updates`, and every placed job records its
    /// layout.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }
    /// Tries to place `alloc` of `job` on the `k` most-available servers
    /// of `index`: first the Theorem-1 even spread, then (for
    /// heterogeneous servers where an equal share overflows the smallest
    /// machine) a capacity-aware near-even spread. On success commits the
    /// reservations and returns the placement. `chosen`/`counts`/`avail`
    /// are reusable scratch buffers owned by the caller.
    #[allow(clippy::too_many_arguments)]
    fn try_place_on_k(
        job: &JobView,
        alloc: &Allocation,
        index: &mut FreeIndex,
        chosen: &mut Vec<ServerId>,
        counts: &mut Vec<TaskCounts>,
        avail: &mut Vec<ResourceVec>,
        k: usize,
    ) -> Option<JobPlacement> {
        chosen.clear();
        chosen.extend_from_slice(&index.order[..k]);
        if !Self::even_counts(job, alloc, index, chosen, counts)
            && !Self::balanced_counts(job, alloc, index, chosen, counts, avail)
        {
            return None;
        }
        // Commit.
        let mut placement = Vec::with_capacity(k);
        for (i, &sid) in chosen.iter().enumerate() {
            if counts[i].ps == 0 && counts[i].workers == 0 {
                continue;
            }
            let demand = job.worker_profile * counts[i].workers as f64
                + job.ps_profile * counts[i].ps as f64;
            index.commit(sid, &demand);
            placement.push((sid, counts[i]));
        }
        Some(placement)
    }

    /// The exact Theorem-1 even split, if every server fits its share.
    /// Fills `counts` and returns true on success.
    fn even_counts(
        job: &JobView,
        alloc: &Allocation,
        index: &FreeIndex,
        chosen: &[ServerId],
        counts: &mut Vec<TaskCounts>,
    ) -> bool {
        let kf = chosen.len() as u32;
        counts.clear();
        counts.extend((0..kf).map(|i| TaskCounts {
            ps: alloc.ps / kf + u32::from(i < alloc.ps % kf),
            workers: alloc.workers / kf + u32::from(i < alloc.workers % kf),
        }));
        for (i, &sid) in chosen.iter().enumerate() {
            let demand = job.worker_profile * counts[i].workers as f64
                + job.ps_profile * counts[i].ps as f64;
            if !demand.fits_within(&index.free[sid.0]) {
                return false;
            }
        }
        true
    }

    /// Near-even fallback for heterogeneous servers: deal PS+worker
    /// *pairs* to the server with the most remaining CPU that fits the
    /// whole pair (Theorem 1's colocation principle), splitting a pair
    /// across two servers only when no server fits both; leftover
    /// unpaired tasks are dealt individually. Fills `counts` (using
    /// `avail` as working space) and returns true on success.
    fn balanced_counts(
        job: &JobView,
        alloc: &Allocation,
        index: &FreeIndex,
        chosen: &[ServerId],
        counts: &mut Vec<TaskCounts>,
        avail: &mut Vec<ResourceVec>,
    ) -> bool {
        avail.clear();
        avail.extend(chosen.iter().map(|&sid| index.free[sid.0]));
        counts.clear();
        counts.resize(chosen.len(), TaskCounts::default());

        let place = |demand: &ResourceVec, avail: &mut [ResourceVec]| -> Option<usize> {
            let target = (0..avail.len())
                .filter(|&i| demand.fits_within(&avail[i]))
                .max_by(|&a, &b| {
                    avail[a]
                        .get(ResourceKind::Cpu)
                        .total_cmp(&avail[b].get(ResourceKind::Cpu))
                })?;
            avail[target] -= *demand;
            Some(target)
        };

        let pair_demand = job.ps_profile + job.worker_profile;
        let pairs = alloc.ps.min(alloc.workers);
        for _ in 0..pairs {
            if let Some(i) = place(&pair_demand, avail) {
                counts[i].ps += 1;
                counts[i].workers += 1;
            } else {
                // No server fits the colocated pair: split it.
                let Some(i) = place(&job.ps_profile, avail) else {
                    return false;
                };
                counts[i].ps += 1;
                let Some(i) = place(&job.worker_profile, avail) else {
                    return false;
                };
                counts[i].workers += 1;
            }
        }
        for _ in pairs..alloc.ps {
            let Some(i) = place(&job.ps_profile, avail) else {
                return false;
            };
            counts[i].ps += 1;
        }
        for _ in pairs..alloc.workers {
            let Some(i) = place(&job.worker_profile, avail) else {
                return false;
            };
            counts[i].workers += 1;
        }
        true
    }
}

impl TaskPlacer for OptimusPlacer {
    fn place(
        &self,
        allocations: &[Allocation],
        jobs: &[JobView],
        cluster: &Cluster,
    ) -> HashMap<JobId, JobPlacement> {
        let _span = self.tel.is_enabled().then(|| self.tel.span("place.place"));
        let mut retries = 0u64;
        // One index build per round; each job then pays only an
        // early-exit prefix scan plus log-time repositions for the
        // servers its placement touches (available CPU order, §4.2),
        // keeping placement fast even on the Fig-12 clusters
        // (16 000 nodes).
        let mut index = FreeIndex::new(cluster);
        let mut chosen: Vec<ServerId> = Vec::new();
        let mut counts: Vec<TaskCounts> = Vec::new();
        let mut avail: Vec<ResourceVec> = Vec::new();
        let mut out = HashMap::new();
        for i in smallest_first(allocations, jobs) {
            let job = &jobs[i];
            let mut alloc = allocations[i];
            let placed = loop {
                let demand = alloc.demand(job);
                // Smallest k whose prefix of free capacity covers the
                // demand; per-server granularity may need a few more.
                let k_min = match index.k_min_or_total(&demand) {
                    Ok(k) => k,
                    Err(total_free) => {
                        // Shrink-on-unplaceable: the allocator reasons
                        // about aggregate capacity (constraint (7)), so
                        // per-server fragmentation can make the full
                        // allocation unplaceable. Rather than pausing a
                        // job that could run smaller (which deadlocks a
                        // lightly loaded cluster), shrink straight to
                        // what aggregate free capacity allows and retry.
                        while !alloc.demand(job).fits_within(&total_free)
                            && alloc.ps + alloc.workers > 2
                        {
                            if alloc.ps >= alloc.workers {
                                alloc.ps -= 1;
                            } else {
                                alloc.workers -= 1;
                            }
                        }
                        if !alloc.demand(job).fits_within(&total_free) {
                            break None;
                        }
                        continue;
                    }
                };
                let k_max = (k_min + 8).min(index.order.len());
                let attempt = (k_min..=k_max).find_map(|k| {
                    Self::try_place_on_k(
                        job,
                        &alloc,
                        &mut index,
                        &mut chosen,
                        &mut counts,
                        &mut avail,
                        k,
                    )
                });
                if attempt.is_some() {
                    break attempt;
                }
                if alloc.ps + alloc.workers <= 2 {
                    break None;
                }
                if alloc.ps >= alloc.workers {
                    alloc.ps -= 1;
                } else {
                    alloc.workers -= 1;
                }
                retries += 1;
            };
            if let Some(p) = placed {
                if self.tel.is_enabled() {
                    let shrunk = (allocations[i].ps + allocations[i].workers)
                        .saturating_sub(alloc.ps + alloc.workers);
                    self.tel.record(TraceEvent::Placement {
                        job: job.id.0,
                        ps: alloc.ps,
                        workers: alloc.workers,
                        servers: p.len(),
                        shrunk,
                    });
                }
                out.insert(job.id, p);
            }
            // else: paused this interval (§4.2).
        }
        if retries > 0 {
            self.tel.add("placement.packing_retries", retries);
        }
        if index.updates > 0 {
            self.tel.add("placement.index_updates", index.updates);
        }
        out
    }
}

// ---------------------------------------------------------------------
// Load-balancing placer (Kubernetes default; DRF baseline)
// ---------------------------------------------------------------------

/// Places tasks one at a time, each on the server with the most free
/// CPU — the "load balancing way, according to the default behavior of
/// Kubernetes" used by the DRF baseline.
#[derive(Debug, Clone, Default)]
pub struct SpreadPlacer;

impl TaskPlacer for SpreadPlacer {
    fn place(
        &self,
        allocations: &[Allocation],
        jobs: &[JobView],
        cluster: &Cluster,
    ) -> HashMap<JobId, JobPlacement> {
        let mut scratch = cluster.clone();
        let mut out = HashMap::new();
        for (alloc, job) in allocations.iter().zip(jobs.iter()) {
            if alloc.ps == 0 || alloc.workers == 0 {
                continue;
            }
            if let Some(p) = place_tasks_by(job, alloc, &mut scratch, |server, _mine| {
                server.available().get(ResourceKind::Cpu)
            }) {
                out.insert(job.id, p);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Packing placer (Tetris baseline)
// ---------------------------------------------------------------------

/// Places tasks one at a time best-fit: the feasible server with the
/// *least* free capacity left, packing tasks onto as few servers as
/// possible to minimize resource fragmentation (§6.1's description of
/// Tetris). As a side effect a job's tasks colocate, which also earns
/// Tetris part of the communication-locality benefit the paper observes.
#[derive(Debug, Clone, Default)]
pub struct PackPlacer;

impl TaskPlacer for PackPlacer {
    fn place(
        &self,
        allocations: &[Allocation],
        jobs: &[JobView],
        cluster: &Cluster,
    ) -> HashMap<JobId, JobPlacement> {
        let mut scratch = cluster.clone();
        let mut out = HashMap::new();
        for (alloc, job) in allocations.iter().zip(jobs.iter()) {
            if alloc.ps == 0 || alloc.workers == 0 {
                continue;
            }
            // Keeping a job's footprint compact is the fragmentation-
            // minimizing behavior §6.1 ascribes to Tetris: strongly
            // prefer servers already hosting this job's tasks, then the
            // fullest feasible server.
            let placed = place_tasks_by(job, alloc, &mut scratch, |server, mine| {
                let own_bonus = if mine.contains_key(&server.id()) {
                    1e9
                } else {
                    0.0
                };
                own_bonus - server.available().get(ResourceKind::Cpu)
            });
            if let Some(p) = placed {
                out.insert(job.id, p);
            }
        }
        out
    }
}

/// Greedy per-task placement: each task goes to the feasible server
/// maximizing `score(server, tasks_this_job_already_has_per_server)`.
///
/// Mirrors Kubernetes semantics: tasks that do not fit stay "pending" —
/// the job runs with whatever subset was placed, as long as at least
/// one PS and one worker landed. Returns `None` (rolling back) only
/// when even that minimum is impossible.
fn place_tasks_by(
    job: &JobView,
    alloc: &Allocation,
    scratch: &mut Cluster,
    score: impl Fn(&optimus_cluster::Server, &HashMap<ServerId, TaskCounts>) -> f64,
) -> Option<JobPlacement> {
    let mut per_server: HashMap<ServerId, TaskCounts> = HashMap::new();
    let mut committed: Vec<(ServerId, ResourceVec)> = Vec::new();

    let place_one = |demand: &ResourceVec,
                     scratch: &mut Cluster,
                     per_server: &mut HashMap<ServerId, TaskCounts>,
                     committed: &mut Vec<(ServerId, ResourceVec)>,
                     is_ps: bool|
     -> bool {
        let target = scratch
            .servers()
            .filter(|s| s.can_fit(demand))
            .max_by(|a, b| {
                score(a, per_server)
                    .total_cmp(&score(b, per_server))
                    // Deterministic tie-break.
                    .then(b.id().cmp(&a.id()))
            })
            .map(|s| s.id());
        let Some(sid) = target else {
            return false;
        };
        scratch
            .server_mut(sid)
            .expect("id from iteration")
            .allocate(demand)
            .expect("can_fit checked");
        committed.push((sid, *demand));
        let entry = per_server
            .entry(sid)
            .or_insert(TaskCounts { ps: 0, workers: 0 });
        if is_ps {
            entry.ps += 1;
        } else {
            entry.workers += 1;
        }
        true
    };

    // Interleave PS and workers so a partially placed job still has both
    // task kinds.
    let mut placed_ps = 0u32;
    let mut placed_w = 0u32;
    for t in 0..(alloc.ps + alloc.workers) {
        let want_ps = (t % 2 == 0 && placed_ps < alloc.ps) || placed_w >= alloc.workers;
        let demand = if want_ps {
            &job.ps_profile
        } else {
            &job.worker_profile
        };
        if place_one(demand, scratch, &mut per_server, &mut committed, want_ps) {
            if want_ps {
                placed_ps += 1;
            } else {
                placed_w += 1;
            }
        } else {
            break; // remaining tasks stay pending
        }
    }

    if placed_ps == 0 || placed_w == 0 {
        // Roll back: not even the minimum viable pair landed.
        for (sid, demand) in committed {
            scratch
                .server_mut(sid)
                .expect("id from iteration")
                .release(&demand)
                .expect("releasing what we allocated");
        }
        return None;
    }
    let mut placement: JobPlacement = per_server.into_iter().collect();
    placement.sort_by_key(|(sid, _)| *sid);
    Some(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::SpeedModel;
    use optimus_workload::TrainingMode;

    fn job(id: u64) -> JobView {
        let mut speed = SpeedModel::new(TrainingMode::Synchronous, 64.0);
        for (p, w, f) in [
            (1, 1, 0.02),
            (2, 2, 0.04),
            (4, 4, 0.06),
            (8, 8, 0.07),
            (4, 8, 0.065),
        ] {
            speed.record(p, w, f);
        }
        speed.refit().unwrap();
        JobView {
            id: JobId(id),
            worker_profile: optimus_workload::job::default_container(),
            ps_profile: optimus_workload::job::default_container(),
            remaining_work: 1_000.0,
            speed,
            progress: 0.5,
            requested_units: 4,
        }
    }

    fn alloc(id: u64, ps: u32, workers: u32) -> Allocation {
        Allocation {
            job: JobId(id),
            ps,
            workers,
        }
    }

    /// Sums placed tasks and verifies they match the allocation.
    fn check_counts(p: &JobPlacement, a: &Allocation) {
        let ps: u32 = p.iter().map(|(_, c)| c.ps).sum();
        let w: u32 = p.iter().map(|(_, c)| c.workers).sum();
        assert_eq!(ps, a.ps);
        assert_eq!(w, a.workers);
    }

    #[test]
    fn optimus_uses_fewest_servers() {
        // 5 PS + 5 workers = 10 containers à 5 cores = 50 cores: more
        // than one 32-core server, so Theorem 1 mandates exactly two
        // servers with an even spread.
        let cluster = Cluster::paper_testbed();
        let jobs = vec![job(0)];
        let allocs = vec![alloc(0, 5, 5)];
        let placements = OptimusPlacer::default().place(&allocs, &jobs, &cluster);
        let p = placements.get(&JobId(0)).expect("placed");
        check_counts(p, &allocs[0]);
        assert_eq!(p.len(), 2, "theorem 1: fewest servers, evenly: {p:?}");
        // Even spread: 2-3 PS and 2-3 workers per server.
        for (_, c) in p {
            assert!((2..=3).contains(&c.ps), "{p:?}");
            assert!((2..=3).contains(&c.workers), "{p:?}");
        }
    }

    #[test]
    fn optimus_single_server_when_it_fits() {
        let cluster = Cluster::paper_testbed();
        let jobs = vec![job(0)];
        let allocs = vec![alloc(0, 2, 2)]; // 4 × 5 = 20 cores ≤ 32
        let placements = OptimusPlacer::default().place(&allocs, &jobs, &cluster);
        let p = placements.get(&JobId(0)).expect("placed");
        assert_eq!(p.len(), 1, "should fit on one server: {p:?}");
    }

    #[test]
    fn optimus_places_smallest_job_first() {
        // Cluster with room for the small job and only a shrunken big
        // job: the small job must get its full allocation first.
        let cluster = Cluster::homogeneous(1, ResourceVec::new(21.0, 0.0, 45.0, 2.0));
        let jobs = vec![job(0), job(1)];
        let allocs = vec![alloc(0, 4, 4), alloc(1, 1, 1)];
        let placements = OptimusPlacer::default().place(&allocs, &jobs, &cluster);
        let small = placements.get(&JobId(1)).expect("small job placed");
        check_counts(small, &allocs[1]);
        // The big job shrank to whatever still fits (at most one pair).
        if let Some(big) = placements.get(&JobId(0)) {
            let tasks: u32 = big.iter().map(|(_, c)| c.ps + c.workers).sum();
            assert!(tasks <= 2, "big job should be shrunken: {big:?}");
        }
    }

    #[test]
    fn optimus_shrinks_rather_than_pausing_solo_job() {
        // A lone job allocated beyond what fragmentation allows must
        // still run (with fewer tasks), not deadlock.
        let cluster = Cluster::homogeneous(2, ResourceVec::new(12.0, 0.0, 24.0, 1.0));
        let jobs = vec![job(0)];
        let allocs = vec![alloc(0, 4, 4)];
        let placements = OptimusPlacer::default().place(&allocs, &jobs, &cluster);
        let p = placements.get(&JobId(0)).expect("shrunken placement");
        let ps: u32 = p.iter().map(|(_, c)| c.ps).sum();
        let w: u32 = p.iter().map(|(_, c)| c.workers).sum();
        assert!(ps >= 1 && w >= 1);
        assert!(ps + w <= 4, "two servers × two 5-core tasks: {p:?}");
    }

    #[test]
    fn all_placers_respect_server_capacity() {
        let cluster = Cluster::paper_testbed();
        let jobs: Vec<JobView> = (0..4).map(job).collect();
        let allocs: Vec<Allocation> = (0..4).map(|i| alloc(i, 3, 3)).collect();
        for placer in [
            &OptimusPlacer::default() as &dyn TaskPlacer,
            &SpreadPlacer,
            &PackPlacer,
        ] {
            let placements = placer.place(&allocs, &jobs, &cluster);
            // Rebuild per-server usage and check capacities.
            let mut usage: HashMap<ServerId, ResourceVec> = HashMap::new();
            for (jid, p) in &placements {
                let j = jobs.iter().find(|j| j.id == *jid).unwrap();
                let a = allocs.iter().find(|a| a.job == *jid).unwrap();
                check_counts(p, a);
                for (sid, c) in p {
                    let d = j.worker_profile * c.workers as f64 + j.ps_profile * c.ps as f64;
                    *usage.entry(*sid).or_default() += d;
                }
            }
            for (sid, used) in usage {
                let cap = cluster.server(sid).unwrap().capacity();
                assert!(used.fits_within(&cap), "{sid}: {used} > {cap}");
            }
        }
    }

    #[test]
    fn spread_placer_balances_load() {
        let cluster = Cluster::homogeneous(4, ResourceVec::new(40.0, 0.0, 160.0, 4.0));
        let jobs = vec![job(0)];
        let allocs = vec![alloc(0, 4, 4)];
        let placements = SpreadPlacer.place(&allocs, &jobs, &cluster);
        let p = placements.get(&JobId(0)).unwrap();
        // Kubernetes-style spreading lands tasks on every server.
        assert_eq!(p.len(), 4, "{p:?}");
    }

    #[test]
    fn truly_unplaceable_job_is_omitted() {
        // Not even one 5-core container fits on a 4-core server.
        let cluster = Cluster::homogeneous(2, ResourceVec::new(4.0, 0.0, 24.0, 1.0));
        let jobs = vec![job(0)];
        let allocs = vec![alloc(0, 4, 4)];
        for placer in [
            &OptimusPlacer::default() as &dyn TaskPlacer,
            &SpreadPlacer,
            &PackPlacer,
        ] {
            let placements = placer.place(&allocs, &jobs, &cluster);
            assert!(placements.is_empty());
        }
    }

    #[test]
    fn baseline_placers_leave_excess_pending() {
        // Kubernetes semantics: place what fits, run with it.
        let cluster = Cluster::homogeneous(2, ResourceVec::new(12.0, 0.0, 48.0, 1.0));
        let jobs = vec![job(0)];
        let allocs = vec![alloc(0, 4, 4)]; // 8 tasks wanted, 4 fit
        for placer in [&SpreadPlacer as &dyn TaskPlacer, &PackPlacer] {
            let placements = placer.place(&allocs, &jobs, &cluster);
            let p = placements.get(&JobId(0)).expect("partial placement");
            let ps: u32 = p.iter().map(|(_, c)| c.ps).sum();
            let w: u32 = p.iter().map(|(_, c)| c.workers).sum();
            assert!(ps >= 1 && w >= 1);
            assert!(ps + w < 8, "must be partial: {p:?}");
        }
    }

    #[test]
    fn zero_allocations_are_skipped() {
        let cluster = Cluster::paper_testbed();
        let jobs = vec![job(0)];
        let allocs = vec![alloc(0, 0, 0)];
        for placer in [
            &OptimusPlacer::default() as &dyn TaskPlacer,
            &SpreadPlacer,
            &PackPlacer,
        ] {
            assert!(placer.place(&allocs, &jobs, &cluster).is_empty());
        }
    }
}
