#![warn(missing_docs)]

//! Optimus: an efficient dynamic resource scheduler for deep-learning
//! clusters (EuroSys 2018) — the core library.
//!
//! Optimus minimizes average job completion time in a shared
//! parameter-server DL cluster by (1) learning, online, how far each job
//! is from convergence and how fast it trains under any resource
//! configuration, and (2) greedily spending cluster resources where they
//! buy the most completion-time reduction per unit of dominant resource.
//!
//! The crate mirrors the paper's structure:
//!
//! * [`convergence`] — §3.1: online loss-curve fitting and
//!   remaining-epoch prediction,
//! * [`speed`] — §3.2: the resource→speed models (Eqns 3/4), fit by NNLS
//!   from sample runs and calibrated online,
//! * [`allocation`] — §4.1: the marginal-gain resource allocator, plus
//!   the DRF and Tetris baseline allocators of §6.1,
//! * [`placement`] — §4.2: the Theorem-1 task placer, plus the
//!   load-balancing (Kubernetes-default) and Tetris-packing baselines,
//! * [`scheduler`] — the allocator × placer composition the simulator
//!   drives every scheduling interval (and the §6.4 ablations mix and
//!   match),
//! * [`reference`] — naive (unoptimized) §4.1/§4.2 implementations kept
//!   as the executable specification the optimized hot path is
//!   property-tested against.
//!
//! # Examples
//!
//! ```
//! use optimus_cluster::Cluster;
//! use optimus_core::prelude::*;
//! use optimus_workload::{JobId, ModelKind, TrainingMode};
//!
//! // Learn a speed model from a few profiled (p, w, speed) samples.
//! let mut speed = SpeedModel::new(TrainingMode::Synchronous, 256.0);
//! for (p, w, f) in [(1, 1, 0.02), (2, 2, 0.05), (4, 4, 0.08), (8, 8, 0.10), (4, 8, 0.09)] {
//!     speed.record(p, w, f);
//! }
//! speed.refit().unwrap();
//!
//! // Ask Optimus to divide the paper's 13-server testbed between jobs.
//! let jobs = vec![JobView {
//!     id: JobId(0),
//!     worker_profile: optimus_workload::job::default_container(),
//!     ps_profile: optimus_workload::job::default_container(),
//!     remaining_work: 5_000.0,
//!     speed: speed.clone(),
//!     progress: 0.5,
//!     requested_units: 4,
//! }];
//! let cluster = Cluster::paper_testbed();
//! let schedule = OptimusScheduler::build().schedule(&jobs, &cluster);
//! assert!(schedule.allocation_for(JobId(0)).unwrap().workers >= 1);
//! ```

pub mod allocation;
pub mod convergence;
pub mod placement;
pub mod reference;
pub mod scheduler;
pub mod speed;

pub use allocation::{
    AllocScratch, Allocation, DrfAllocator, FifoAllocator, OptimusAllocator, ResourceAllocator,
    TetrisAllocator,
};
pub use convergence::{refit_convergence_batch, ConvergenceEstimator};
pub use placement::{
    OptimusPlacer, PackPlacer, PlaceScratch, PlacementStore, SpreadPlacer, TaskPlacer,
};
pub use reference::{ReferenceOptimusAllocator, ReferenceOptimusPlacer};
pub use scheduler::{
    CompositeScheduler, DeltaStats, JobView, RoundDelta, RoundScratch, Schedule, Scheduler,
};
pub use speed::SpeedModel;

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::allocation::{
        AllocScratch, Allocation, DrfAllocator, FifoAllocator, OptimusAllocator, ResourceAllocator,
        TetrisAllocator,
    };
    pub use crate::convergence::ConvergenceEstimator;
    pub use crate::placement::{
        OptimusPlacer, PackPlacer, PlaceScratch, PlacementStore, SpreadPlacer, TaskPlacer,
    };
    pub use crate::scheduler::{
        CompositeScheduler, DrfScheduler, JobView, OptimusScheduler, RoundScratch, Schedule,
        Scheduler, TetrisScheduler,
    };
    pub use crate::speed::SpeedModel;
}
