//! Naive reference implementations of the Optimus allocator and placer.
//!
//! These are the straight-line §4.1/§4.2 algorithms *before* the
//! hot-path optimizations (prediction memoization, the incremental
//! free-capacity index, reusable scratch buffers): every marginal-gain
//! evaluation calls the speed model directly, and every job re-sorts a
//! cloned cluster by free CPU. They exist as an executable
//! specification — the optimized [`OptimusAllocator`] and
//! [`OptimusPlacer`] must produce *identical* schedules on identical
//! inputs, which the `equivalence` property test enforces on randomized
//! clusters and job mixes.
//!
//! Keep these in sync with algorithmic (not performance) changes to the
//! production path; they are deliberately simple and carry no
//! telemetry.
//!
//! [`OptimusAllocator`]: crate::allocation::OptimusAllocator
//! [`OptimusPlacer`]: crate::placement::OptimusPlacer

use crate::allocation::{Allocation, ResourceAllocator};
use crate::scheduler::{JobPlacement, JobView};
use optimus_cluster::{Cluster, ResourceKind, ResourceVec, ServerId};
use optimus_ps::TaskCounts;
use optimus_workload::JobId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

// ---------------------------------------------------------------------
// Reference allocator (§4.1, no memoization)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    AddWorker,
    AddPs,
}

/// Ordered by `(gain, job id)`: the id tie-break (smaller id wins among
/// equal gains) keeps the grant order independent of job insertion
/// order, mirroring the production allocator.
struct Candidate {
    gain: f64,
    job_idx: usize,
    job: JobId,
    action: Action,
    version: u64,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.gain.total_cmp(&other.gain).is_eq() && self.job == other.job
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.job.cmp(&self.job))
    }
}

/// The marginal-gain allocator exactly as first implemented: `t_now`,
/// `t_worker`, and `t_ps` are recomputed from the speed model on every
/// [`best_candidate`](Self::best_candidate) call.
#[derive(Debug, Clone)]
pub struct ReferenceOptimusAllocator {
    priority_factor: f64,
    young_progress: f64,
}

impl Default for ReferenceOptimusAllocator {
    fn default() -> Self {
        ReferenceOptimusAllocator {
            priority_factor: 1.0,
            young_progress: 0.1,
        }
    }
}

impl ReferenceOptimusAllocator {
    /// Sets the §4.1 priority factor (mirror of
    /// [`OptimusAllocator::with_priority_factor`](crate::allocation::OptimusAllocator::with_priority_factor)).
    pub fn with_priority_factor(mut self, factor: f64) -> Self {
        self.priority_factor = factor;
        self
    }

    /// Sets the progress fraction below which the factor applies.
    pub fn with_young_progress(mut self, progress: f64) -> Self {
        self.young_progress = progress;
        self
    }

    fn best_candidate(
        &self,
        job: &JobView,
        alloc: &Allocation,
        remaining: &ResourceVec,
        capacity: &ResourceVec,
    ) -> Option<(f64, Action)> {
        let t_now = job.remaining_time(alloc.ps, alloc.workers);
        let mut best: Option<(f64, Action)> = None;

        let mut consider = |action: Action, demand: &ResourceVec, t_next: f64| {
            if !demand.fits_within(remaining) {
                return;
            }
            let dominant = demand
                .dominant_share(capacity)
                .map(|(kind, _)| demand.get(kind))
                .unwrap_or(0.0);
            if dominant <= 0.0 {
                return;
            }
            let reduction = if t_now.is_infinite() && t_next.is_finite() {
                f64::MAX / 4.0
            } else {
                t_now - t_next
            };
            let mut gain = reduction / dominant;
            if job.progress < self.young_progress {
                gain *= self.priority_factor;
            }
            match best {
                Some((g, _)) if g >= gain => {}
                _ => best = Some((gain, action)),
            }
        };

        let t_worker = job.remaining_time(alloc.ps, alloc.workers + 1);
        consider(Action::AddWorker, &job.worker_profile, t_worker);
        let t_ps = job.remaining_time(alloc.ps + 1, alloc.workers);
        consider(Action::AddPs, &job.ps_profile, t_ps);
        best
    }
}

impl ResourceAllocator for ReferenceOptimusAllocator {
    fn allocate(&self, jobs: &[JobView], cluster: &Cluster) -> Vec<Allocation> {
        let capacity = cluster.total_capacity();
        let mut remaining = cluster.total_available();
        let mut allocs: Vec<Allocation> = jobs
            .iter()
            .map(|j| Allocation {
                job: j.id,
                ps: 0,
                workers: 0,
            })
            .collect();

        // Starvation avoidance: one worker + one PS per job while space
        // lasts, in submission (job-id) order — ids are assigned at
        // submission, so this matches the paper regardless of how the
        // caller ordered the views.
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_unstable_by_key(|&i| (jobs[i].id, i));
        for &i in &order {
            let unit = jobs[i].unit_demand();
            if unit.fits_within(&remaining) {
                allocs[i].ps = 1;
                allocs[i].workers = 1;
                remaining -= unit;
            }
        }

        // Greedy marginal-gain loop over a lazy max-heap.
        let mut versions = vec![0u64; jobs.len()];
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
        for (i, job) in jobs.iter().enumerate() {
            if allocs[i].workers == 0 {
                continue;
            }
            if let Some((gain, action)) =
                self.best_candidate(job, &allocs[i], &remaining, &capacity)
            {
                heap.push(Candidate {
                    gain,
                    job_idx: i,
                    job: job.id,
                    action,
                    version: 0,
                });
            }
        }

        while let Some(cand) = heap.pop() {
            if cand.version != versions[cand.job_idx] {
                continue; // stale
            }
            if cand.gain <= 0.0 {
                break;
            }
            let job = &jobs[cand.job_idx];
            let demand = match cand.action {
                Action::AddWorker => job.worker_profile,
                Action::AddPs => job.ps_profile,
            };
            if !demand.fits_within(&remaining) {
                versions[cand.job_idx] += 1;
                if let Some((gain, action)) =
                    self.best_candidate(job, &allocs[cand.job_idx], &remaining, &capacity)
                {
                    heap.push(Candidate {
                        gain,
                        job_idx: cand.job_idx,
                        job: job.id,
                        action,
                        version: versions[cand.job_idx],
                    });
                }
                continue;
            }
            match cand.action {
                Action::AddWorker => allocs[cand.job_idx].workers += 1,
                Action::AddPs => allocs[cand.job_idx].ps += 1,
            }
            remaining -= demand;
            versions[cand.job_idx] += 1;
            if let Some((gain, action)) =
                self.best_candidate(job, &allocs[cand.job_idx], &remaining, &capacity)
            {
                heap.push(Candidate {
                    gain,
                    job_idx: cand.job_idx,
                    job: job.id,
                    action,
                    version: versions[cand.job_idx],
                });
            }
        }
        allocs
    }
}

// ---------------------------------------------------------------------
// Reference placer (§4.2, clone + per-job re-sort)
// ---------------------------------------------------------------------

/// The Theorem-1 placer exactly as first implemented: one `Cluster`
/// clone as scratch, a full re-sort of all servers by free CPU per job,
/// and fresh prefix sums of free capacity per job.
#[derive(Debug, Clone, Default)]
pub struct ReferenceOptimusPlacer;

impl ReferenceOptimusPlacer {
    fn try_place_on_k(
        job: &JobView,
        alloc: &Allocation,
        scratch: &mut Cluster,
        sorted: &[ServerId],
        k: usize,
    ) -> Option<JobPlacement> {
        let chosen = &sorted[..k];
        let counts = Self::even_counts(job, alloc, scratch, chosen, k)
            .or_else(|| Self::balanced_counts(job, alloc, scratch, chosen))?;
        let mut placement = Vec::with_capacity(k);
        for (i, &sid) in chosen.iter().enumerate() {
            if counts[i].ps == 0 && counts[i].workers == 0 {
                continue;
            }
            let demand = job.worker_profile * counts[i].workers as f64
                + job.ps_profile * counts[i].ps as f64;
            scratch
                .server_mut(sid)
                .expect("sorted ids are valid")
                .allocate(&demand)
                .expect("feasibility checked above");
            placement.push((sid, counts[i]));
        }
        Some(placement)
    }

    fn even_counts(
        job: &JobView,
        alloc: &Allocation,
        scratch: &Cluster,
        chosen: &[ServerId],
        k: usize,
    ) -> Option<Vec<TaskCounts>> {
        let kf = k as u32;
        let counts: Vec<TaskCounts> = (0..kf)
            .map(|i| TaskCounts {
                ps: alloc.ps / kf + u32::from(i < alloc.ps % kf),
                workers: alloc.workers / kf + u32::from(i < alloc.workers % kf),
            })
            .collect();
        for (i, &sid) in chosen.iter().enumerate() {
            let demand = job.worker_profile * counts[i].workers as f64
                + job.ps_profile * counts[i].ps as f64;
            if !scratch
                .server(sid)
                .expect("sorted ids are valid")
                .can_fit(&demand)
            {
                return None;
            }
        }
        Some(counts)
    }

    fn balanced_counts(
        job: &JobView,
        alloc: &Allocation,
        scratch: &Cluster,
        chosen: &[ServerId],
    ) -> Option<Vec<TaskCounts>> {
        let mut avail: Vec<ResourceVec> = chosen
            .iter()
            .map(|&sid| {
                scratch
                    .server(sid)
                    .expect("sorted ids are valid")
                    .available()
            })
            .collect();
        let mut counts = vec![TaskCounts::default(); chosen.len()];

        let place = |demand: &ResourceVec, avail: &mut [ResourceVec]| -> Option<usize> {
            let target = (0..avail.len())
                .filter(|&i| demand.fits_within(&avail[i]))
                .max_by(|&a, &b| {
                    avail[a]
                        .get(ResourceKind::Cpu)
                        .total_cmp(&avail[b].get(ResourceKind::Cpu))
                })?;
            avail[target] -= *demand;
            Some(target)
        };

        let pair_demand = job.ps_profile + job.worker_profile;
        let pairs = alloc.ps.min(alloc.workers);
        for _ in 0..pairs {
            if let Some(i) = place(&pair_demand, &mut avail) {
                counts[i].ps += 1;
                counts[i].workers += 1;
            } else {
                let i = place(&job.ps_profile, &mut avail)?;
                counts[i].ps += 1;
                let i = place(&job.worker_profile, &mut avail)?;
                counts[i].workers += 1;
            }
        }
        for _ in pairs..alloc.ps {
            let i = place(&job.ps_profile, &mut avail)?;
            counts[i].ps += 1;
        }
        for _ in pairs..alloc.workers {
            let i = place(&job.worker_profile, &mut avail)?;
            counts[i].workers += 1;
        }
        Some(counts)
    }
}

impl crate::placement::TaskPlacer for ReferenceOptimusPlacer {
    fn place(
        &self,
        allocations: &[Allocation],
        jobs: &[JobView],
        cluster: &Cluster,
    ) -> HashMap<JobId, JobPlacement> {
        let mut retries = 0u64;
        let mut scratch = cluster.clone();
        let mut out = HashMap::new();
        for i in crate::placement::smallest_first(allocations, jobs) {
            let job = &jobs[i];
            // Server list re-sorted per job (available CPU, §4.2).
            let sorted = scratch.ids_by_available_desc(|a| a.get(ResourceKind::Cpu));
            let free: Vec<ResourceVec> = sorted
                .iter()
                .map(|&sid| {
                    scratch
                        .server(sid)
                        .expect("sorted ids are valid")
                        .available()
                })
                .collect();
            let mut prefix = Vec::with_capacity(free.len() + 1);
            prefix.push(ResourceVec::zero());
            for f in &free {
                let last = *prefix.last().expect("non-empty");
                prefix.push(last + *f);
            }
            let total_free = *prefix.last().expect("non-empty");

            // Shrink-on-unplaceable, as in the production placer.
            let mut alloc = allocations[i];
            while !alloc.demand(job).fits_within(&total_free) && alloc.ps + alloc.workers > 2 {
                if alloc.ps >= alloc.workers {
                    alloc.ps -= 1;
                } else {
                    alloc.workers -= 1;
                }
            }
            let placed = loop {
                let demand = alloc.demand(job);
                if !demand.fits_within(&total_free) {
                    break None;
                }
                let k_min = (1..=sorted.len())
                    .find(|&k| demand.fits_within(&prefix[k]))
                    .unwrap_or(sorted.len());
                let k_max = (k_min + 8).min(sorted.len());
                let attempt = (k_min..=k_max)
                    .find_map(|k| Self::try_place_on_k(job, &alloc, &mut scratch, &sorted, k));
                if attempt.is_some() {
                    break attempt;
                }
                if alloc.ps + alloc.workers <= 2 {
                    break None;
                }
                if alloc.ps >= alloc.workers {
                    alloc.ps -= 1;
                } else {
                    alloc.workers -= 1;
                }
                retries += 1;
            };
            if let Some(p) = placed {
                out.insert(job.id, p);
            }
        }
        let _ = retries;
        out
    }
}
