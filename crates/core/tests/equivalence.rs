//! Equivalence of the optimized hot path and the naive reference.
//!
//! The PR that introduced the incremental free-capacity index, the
//! per-round prediction memo, and the O(1) `Schedule` lookups promises
//! *behavioral identity*: the same `Schedule` for the same inputs. The
//! [`optimus_core::reference`] module keeps the pre-optimization
//! algorithms as an executable specification; this property test runs
//! both sides on randomized clusters and job mixes and requires every
//! allocation row and every placement map to be identical.
//!
//! Resource quantities are generated as multiples of 0.25 so all sums
//! are exactly representable — a disagreement can only come from a real
//! algorithmic divergence, never float noise.

use optimus_cluster::{Cluster, ResourceVec};
use optimus_core::allocation::{OptimusAllocator, ResourceAllocator};
use optimus_core::placement::{OptimusPlacer, TaskPlacer};
use optimus_core::prelude::*;
use optimus_core::reference::{ReferenceOptimusAllocator, ReferenceOptimusPlacer};
use optimus_core::RoundDelta;
use optimus_ps::PsJobModel;
use optimus_workload::{JobId, ModelKind, TrainingMode};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Prefit speed models (3 model kinds × 2 training modes), shared by
/// all cases — fitting is the expensive part and is not under test.
fn model_pool() -> &'static Vec<SpeedModel> {
    static MODELS: OnceLock<Vec<SpeedModel>> = OnceLock::new();
    MODELS.get_or_init(|| {
        let mut pool = Vec::new();
        for kind in [ModelKind::ResNet50, ModelKind::CnnRand, ModelKind::Seq2Seq] {
            for mode in [TrainingMode::Synchronous, TrainingMode::Asynchronous] {
                let profile = kind.profile();
                let truth = PsJobModel::new(profile, mode);
                let mut speed = SpeedModel::new(mode, profile.batch_size as f64);
                for (p, w) in [(1, 1), (2, 2), (4, 4), (8, 8), (4, 8), (8, 4)] {
                    speed.record(p, w, truth.speed(p, w));
                }
                speed.refit().expect("profiled");
                pool.push(speed);
            }
        }
        pool
    })
}

/// `((model_idx, work, progress_pct, units), (cpu_q, mem_q, bw_q))` →
/// JobView. The `_q` values are quarters, so every profile coordinate
/// is a multiple of 0.25.
type JobSeed = ((usize, u64, u32, u32), (u32, u32, u32));

fn make_job(id: u64, seed: &JobSeed) -> JobView {
    let &((model_idx, work, progress_pct, units), (cpu_q, mem_q, bw_q)) = seed;
    let pool = model_pool();
    let profile = ResourceVec::new(
        1.0 + cpu_q as f64 * 0.25,
        0.0,
        2.0 + mem_q as f64 * 0.25,
        bw_q as f64 * 0.25,
    );
    JobView {
        id: JobId(id),
        worker_profile: profile,
        ps_profile: profile,
        remaining_work: 100.0 + work as f64,
        speed: pool[model_idx % pool.len()].clone(),
        progress: progress_pct as f64 / 100.0,
        requested_units: units,
    }
}

/// `(cpu_q, mem_q, bw_q)` quarters → heterogeneous server capacity.
fn make_cluster(servers: &[(u32, u32, u32)]) -> Cluster {
    let caps: Vec<(ResourceVec, &str)> = servers
        .iter()
        .map(|&(cpu_q, mem_q, bw_q)| {
            (
                ResourceVec::new(
                    4.0 + cpu_q as f64 * 0.25,
                    0.0,
                    8.0 + mem_q as f64 * 0.25,
                    1.0 + bw_q as f64 * 0.25,
                ),
                "random",
            )
        })
        .collect();
    Cluster::from_capacities(&caps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn optimized_path_matches_reference(
        servers in prop::collection::vec((0u32..240, 0u32..360, 0u32..16), 3..24),
        seeds in prop::collection::vec(
            ((0usize..6, 0u64..100_000, 0u32..100, 1u32..10), (0u32..40, 0u32..64, 0u32..8)),
            1..16,
        ),
    ) {
        let cluster = make_cluster(&servers);
        let jobs: Vec<JobView> = seeds
            .iter()
            .enumerate()
            .map(|(i, s)| make_job(i as u64, s))
            .collect();

        // Allocator equivalence.
        let fast_allocs = OptimusAllocator::default().allocate(&jobs, &cluster);
        let ref_allocs = ReferenceOptimusAllocator::default().allocate(&jobs, &cluster);
        prop_assert_eq!(&fast_allocs, &ref_allocs, "allocations diverge");

        // Placer equivalence on the agreed allocations.
        let fast_place = OptimusPlacer::default().place(&fast_allocs, &jobs, &cluster);
        let ref_place = ReferenceOptimusPlacer.place(&ref_allocs, &jobs, &cluster);
        prop_assert_eq!(&fast_place, &ref_place, "placements diverge");

        // End-to-end composite equivalence (what the simulator runs).
        let fast = CompositeScheduler::new(
            "optimized",
            Box::new(OptimusAllocator::default()),
            Box::new(OptimusPlacer::default()),
        )
        .schedule(&jobs, &cluster);
        let reference = CompositeScheduler::new(
            "reference",
            Box::new(ReferenceOptimusAllocator::default()),
            Box::new(ReferenceOptimusPlacer),
        )
        .schedule(&jobs, &cluster);
        prop_assert_eq!(fast.allocations(), reference.allocations());
        prop_assert_eq!(fast.placements(), reference.placements());
    }

    #[test]
    fn optimized_path_matches_reference_with_priority_factor(
        servers in prop::collection::vec((0u32..240, 0u32..360, 0u32..16), 3..16),
        seeds in prop::collection::vec(
            ((0usize..6, 0u64..100_000, 0u32..100, 1u32..10), (0u32..40, 0u32..64, 0u32..8)),
            1..12,
        ),
    ) {
        let cluster = make_cluster(&servers);
        let jobs: Vec<JobView> = seeds
            .iter()
            .enumerate()
            .map(|(i, s)| make_job(i as u64, s))
            .collect();
        let fast = OptimusAllocator::default()
            .with_priority_factor(0.95)
            .allocate(&jobs, &cluster);
        let reference = ReferenceOptimusAllocator::default()
            .with_priority_factor(0.95)
            .allocate(&jobs, &cluster);
        prop_assert_eq!(&fast, &reference);
    }

    /// Permuting the job slice never changes what any job is granted:
    /// both the starter loop and the heap tie-break key on the job id,
    /// never on slice position. The optimized allocator on a shuffled
    /// slice must agree per-id with the reference on the original
    /// order (and with itself).
    #[test]
    fn permuting_job_order_never_changes_allocations(
        servers in prop::collection::vec((0u32..240, 0u32..360, 0u32..16), 3..16),
        seeds in prop::collection::vec(
            ((0usize..6, 0u64..100_000, 0u32..100, 1u32..10), (0u32..40, 0u32..64, 0u32..8)),
            2..12,
        ),
        shuffle_seed in any::<u64>(),
    ) {
        let cluster = make_cluster(&servers);
        let jobs: Vec<JobView> = seeds
            .iter()
            .enumerate()
            .map(|(i, s)| make_job(i as u64, s))
            .collect();

        // Seeded Fisher–Yates so every case is reproducible.
        let mut shuffled = jobs.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }

        let by_id = |mut rows: Vec<Allocation>| {
            rows.sort_unstable_by_key(|a| a.job);
            rows
        };
        let reference = by_id(ReferenceOptimusAllocator::default().allocate(&jobs, &cluster));
        let fast_orig = by_id(OptimusAllocator::default().allocate(&jobs, &cluster));
        let fast_perm = by_id(OptimusAllocator::default().allocate(&shuffled, &cluster));
        let ref_perm = by_id(ReferenceOptimusAllocator::default().allocate(&shuffled, &cluster));
        prop_assert_eq!(&fast_orig, &reference, "optimized diverges from reference");
        prop_assert_eq!(&fast_perm, &reference, "optimized is order-sensitive");
        prop_assert_eq!(&ref_perm, &reference, "reference is order-sensitive");
    }

    /// Reusing one `RoundScratch` + `Schedule` across rounds with
    /// *different* inputs matches a fresh `schedule()` every time — no
    /// state leaks between rounds.
    #[test]
    fn warm_scratch_rounds_match_fresh_schedules(
        servers in prop::collection::vec((0u32..240, 0u32..360, 0u32..16), 3..16),
        seeds in prop::collection::vec(
            ((0usize..6, 0u64..100_000, 0u32..100, 1u32..10), (0u32..40, 0u32..64, 0u32..8)),
            2..12,
        ),
    ) {
        let cluster = make_cluster(&servers);
        let jobs: Vec<JobView> = seeds
            .iter()
            .enumerate()
            .map(|(i, s)| make_job(i as u64, s))
            .collect();
        let scheduler = OptimusScheduler::build();
        let mut scratch = RoundScratch::default();
        let mut out = Schedule::new(Vec::new(), std::collections::HashMap::new());
        // Three rounds over shrinking suffixes of the job list — each
        // round reuses the scratch sized by the previous one.
        for start in [0usize, jobs.len() / 2, jobs.len() - 1] {
            let round_jobs = &jobs[start..];
            scheduler.schedule_into(round_jobs, &cluster, &mut scratch, &mut out);
            let fresh = scheduler.schedule(round_jobs, &cluster);
            prop_assert_eq!(out.allocations(), fresh.allocations());
            prop_assert_eq!(out.placements(), fresh.placements());
        }
    }

    /// The delta engine under arbitrary churn — arrivals, departures,
    /// per-job work jitter and cluster resizes, each reported to
    /// [`Scheduler::schedule_delta`] with an *exact* dirty list — is
    /// byte-identical to a fresh full `schedule()` every round. This
    /// covers both regimes: big generated clusters where the headroom
    /// certificate holds (grants replayed), and contended ones where it
    /// fails (silent fall back to the full greedy pass).
    #[test]
    fn delta_rounds_match_full_rounds_under_churn(
        mut servers in prop::collection::vec((0u32..240, 0u32..360, 0u32..16), 3..16),
        seeds in prop::collection::vec(
            ((0usize..6, 0u64..100_000, 0u32..100, 1u32..10), (0u32..40, 0u32..64, 0u32..8)),
            2..10,
        ),
        rounds in prop::collection::vec(
            (
                prop::collection::vec(any::<u64>(), 0..3),
                (0u32..10, ((0usize..6, 0u64..100_000, 0u32..100, 1u32..10), (0u32..40, 0u32..64, 0u32..8))),
                (0u32..10, any::<u64>()),
                0u32..10,
            ),
            1..6,
        ),
    ) {
        let mut next_id = seeds.len() as u64;
        let mut jobs: Vec<JobView> = seeds
            .iter()
            .enumerate()
            .map(|(i, s)| make_job(i as u64, s))
            .collect();
        let mut cluster = make_cluster(&servers);
        let scheduler = OptimusScheduler::build();
        let mut scratch = RoundScratch::default();
        let mut out = Schedule::new(Vec::new(), std::collections::HashMap::new());
        let mut first = true;

        for (jitters, (arrive_p, arrive_seed), (depart_p, depart_pick), resize_p) in &rounds {
            let mut dirty: Vec<u32> = Vec::new();
            // ~30 % of rounds lose a job, ~40 % gain one, ~20 % resize
            // the cluster; every round may jitter up to two jobs.
            if *depart_p < 3 && jobs.len() > 1 {
                let gone = (*depart_pick as usize) % jobs.len();
                jobs.remove(gone);
            }
            if *arrive_p < 4 {
                jobs.push(make_job(next_id, arrive_seed));
                next_id += 1;
                dirty.push((jobs.len() - 1) as u32);
            }
            for pick in jitters {
                let i = (*pick as usize) % jobs.len();
                jobs[i].remaining_work *= 1.25;
                dirty.push(i as u32);
            }
            let mut cluster_changed = false;
            if *resize_p < 2 {
                if servers.len() > 3 {
                    servers.pop();
                } else {
                    servers.push(servers[0]);
                }
                cluster = make_cluster(&servers);
                cluster_changed = true;
            }
            dirty.sort_unstable();
            dirty.dedup();
            let delta = RoundDelta {
                full: std::mem::take(&mut first),
                cluster_changed,
                dirty,
            };
            scheduler.schedule_delta(&jobs, &cluster, &delta, &mut scratch, &mut out);
            let fresh = scheduler.schedule(&jobs, &cluster);
            prop_assert_eq!(out.allocations(), fresh.allocations(), "allocations diverge");
            prop_assert_eq!(out.placements(), fresh.placements(), "placements diverge");
        }
    }
}

/// A driver-accurate delta loop on a large uncontended cluster: clean
/// jobs must *replay* their stored grants rather than re-derive them,
/// and a provably unchanged round must be skipped outright — all while
/// matching a fresh full round byte for byte.
///
/// Synchronous-mode models only (even pool indices): their speed curves
/// saturate, so solo climbs stop at finite counts and the headroom
/// certificate can hold. Asynchronous jobs climb until the cluster
/// fills, which forces the (still correct) full path — covered by the
/// churn property test above.
#[test]
fn clean_jobs_replay_grants_and_quiet_rounds_skip() {
    let cluster = make_cluster(&vec![(239, 359, 15); 100]);
    let mut jobs: Vec<JobView> = (0..6u64)
        .map(|i| {
            make_job(
                i,
                &(
                    ((i as usize % 3) * 2, 10_000 * (i + 1), 10 * i as u32, 4),
                    (8, 12, 4),
                ),
            )
        })
        .collect();
    let scheduler = OptimusScheduler::build();
    let mut scratch = RoundScratch::default();
    let mut out = Schedule::new(Vec::new(), std::collections::HashMap::new());

    // Round 1: cold start — the driver distrusts everything.
    let delta = RoundDelta {
        full: true,
        cluster_changed: false,
        dirty: Vec::new(),
    };
    let stats = scheduler.schedule_delta(&jobs, &cluster, &delta, &mut scratch, &mut out);
    assert!(stats.alloc_full, "a full round runs the full greedy pass");
    let fresh = scheduler.schedule(&jobs, &cluster);
    assert_eq!(out.allocations(), fresh.allocations());
    assert_eq!(out.placements(), fresh.placements());

    // Round 2: one job progressed; the other five are clean.
    jobs[2].remaining_work *= 0.75;
    let delta = RoundDelta {
        full: false,
        cluster_changed: false,
        dirty: vec![2],
    };
    let stats = scheduler.schedule_delta(&jobs, &cluster, &delta, &mut scratch, &mut out);
    let fresh = scheduler.schedule(&jobs, &cluster);
    assert_eq!(out.allocations(), fresh.allocations());
    assert_eq!(out.placements(), fresh.placements());
    assert!(
        !stats.alloc_full,
        "an uncontended cluster must certify the delta path"
    );
    assert!(
        stats.replayed_grants > 0,
        "clean jobs replay stored rows: {stats:?}"
    );
    assert_eq!(stats.dirty_jobs, 1);
    assert!(!stats.skipped_full);

    // Round 3: nothing changed — the whole round is skipped and `out`
    // (left untouched) still matches a fresh schedule.
    let stats = scheduler.schedule_delta(
        &jobs,
        &cluster,
        &RoundDelta::default(),
        &mut scratch,
        &mut out,
    );
    assert!(stats.skipped_full && stats.place_reused);
    let fresh = scheduler.schedule(&jobs, &cluster);
    assert_eq!(out.allocations(), fresh.allocations());
    assert_eq!(out.placements(), fresh.placements());
}

/// Replay provenance: on an uncontended cluster, a clean job's
/// why-record must cite the round that *originally derived* its grant —
/// through both the delta-allocation replay path and the whole-round
/// skip — and a skipped round's records must carry the full story
/// (grant row and replayed layout) even though no work ran.
#[test]
fn replayed_grants_cite_their_originating_round() {
    use optimus_telemetry::{DeltaWhy, Telemetry};

    let tel = Telemetry::enabled();
    tel.enable_provenance();
    let cluster = make_cluster(&vec![(239, 359, 15); 100]);
    let mut jobs: Vec<JobView> = (0..6u64)
        .map(|i| {
            make_job(
                i,
                &(
                    ((i as usize % 3) * 2, 10_000 * (i + 1), 10 * i as u32, 4),
                    (8, 12, 4),
                ),
            )
        })
        .collect();
    let scheduler = OptimusScheduler::build_with_telemetry(tel.clone());
    let mut scratch = RoundScratch::default();
    let mut out = Schedule::new(Vec::new(), std::collections::HashMap::new());

    // Round 1: cold start — the full pass derives every grant.
    let delta = RoundDelta {
        full: true,
        cluster_changed: false,
        dirty: Vec::new(),
    };
    scheduler.schedule_delta(&jobs, &cluster, &delta, &mut scratch, &mut out);

    // Round 2: job 2 is dirty; the other five replay round 1's grants.
    jobs[2].remaining_work *= 0.75;
    let delta = RoundDelta {
        full: false,
        cluster_changed: false,
        dirty: vec![2],
    };
    let stats = scheduler.schedule_delta(&jobs, &cluster, &delta, &mut scratch, &mut out);
    assert!(
        !stats.alloc_full && stats.replayed_grants > 0,
        "uncontended delta round must replay: {stats:?}"
    );

    // Round 3: nothing changed — the whole round is skipped.
    let stats = scheduler.schedule_delta(
        &jobs,
        &cluster,
        &RoundDelta::default(),
        &mut scratch,
        &mut out,
    );
    assert!(stats.skipped_full);

    let records = tel.why_records();
    let rec = |round: u64, job: u64| {
        records
            .iter()
            .find(|r| r.round == round && r.job == job)
            .unwrap_or_else(|| panic!("no why-record for round {round} job {job}"))
    };

    for job in [0u64, 1, 3, 4, 5] {
        // Round 2 (delta-allocation replay): cites round 1.
        match &rec(2, job).delta {
            DeltaWhy::Replay { origin_round, .. } => assert_eq!(*origin_round, 1, "job {job}"),
            other => panic!("job {job} round 2: expected replay, got {other:?}"),
        }
        // Round 3 (whole-round skip): still cites round 1 — the origin
        // survives intermediate replays rather than resetting each
        // round.
        match &rec(3, job).delta {
            DeltaWhy::Replay { origin_round, .. } => assert_eq!(*origin_round, 1, "job {job}"),
            other => panic!("job {job} round 3: expected replay, got {other:?}"),
        }
    }
    // The dirty job re-derived in round 2; round 3's skip then cites
    // round 2 as its origin.
    match &rec(2, 2).delta {
        DeltaWhy::Derive { .. } => {}
        other => panic!("dirty job round 2: expected derive, got {other:?}"),
    }
    match &rec(3, 2).delta {
        DeltaWhy::Replay { origin_round, .. } => assert_eq!(*origin_round, 2),
        other => panic!("dirty job round 3: expected replay, got {other:?}"),
    }
    // Skipped-round records still tell the whole story: the grant rows
    // match the live schedule and the replayed layouts are recorded.
    for job in 0..6u64 {
        let r = rec(3, job);
        let a = out.allocation_for(JobId(job)).expect("allocated");
        assert_eq!((r.ps, r.workers), (a.ps, a.workers), "job {job}");
        let p = r.place.as_ref().expect("placed jobs carry a place story");
        assert!(p.replayed, "job {job}: a skipped round replays layouts");
    }
}

/// On a contended cluster the headroom certificate cannot hold, so a
/// dirty round falls back to the full greedy pass — and still matches a
/// fresh schedule exactly.
#[test]
fn contended_clusters_fall_back_to_the_full_path() {
    let cluster = make_cluster(&[(0, 0, 0), (1, 2, 1), (2, 1, 0)]);
    let mut jobs: Vec<JobView> = (0..6u64)
        .map(|i| make_job(i, &((i as usize, 50_000, 5 * i as u32, 8), (24, 48, 6))))
        .collect();
    let scheduler = OptimusScheduler::build();
    let mut scratch = RoundScratch::default();
    let mut out = Schedule::new(Vec::new(), std::collections::HashMap::new());

    let delta = RoundDelta {
        full: true,
        cluster_changed: false,
        dirty: Vec::new(),
    };
    scheduler.schedule_delta(&jobs, &cluster, &delta, &mut scratch, &mut out);

    jobs[0].remaining_work *= 1.25;
    let delta = RoundDelta {
        full: false,
        cluster_changed: false,
        dirty: vec![0],
    };
    let stats = scheduler.schedule_delta(&jobs, &cluster, &delta, &mut scratch, &mut out);
    assert!(
        stats.alloc_full,
        "contention must fail the certificate: {stats:?}"
    );
    let fresh = scheduler.schedule(&jobs, &cluster);
    assert_eq!(out.allocations(), fresh.allocations());
    assert_eq!(out.placements(), fresh.placements());
}
