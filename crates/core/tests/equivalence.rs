//! Equivalence of the optimized hot path and the naive reference.
//!
//! The PR that introduced the incremental free-capacity index, the
//! per-round prediction memo, and the O(1) `Schedule` lookups promises
//! *behavioral identity*: the same `Schedule` for the same inputs. The
//! [`optimus_core::reference`] module keeps the pre-optimization
//! algorithms as an executable specification; this property test runs
//! both sides on randomized clusters and job mixes and requires every
//! allocation row and every placement map to be identical.
//!
//! Resource quantities are generated as multiples of 0.25 so all sums
//! are exactly representable — a disagreement can only come from a real
//! algorithmic divergence, never float noise.

use optimus_cluster::{Cluster, ResourceVec};
use optimus_core::allocation::{OptimusAllocator, ResourceAllocator};
use optimus_core::placement::{OptimusPlacer, TaskPlacer};
use optimus_core::prelude::*;
use optimus_core::reference::{ReferenceOptimusAllocator, ReferenceOptimusPlacer};
use optimus_ps::PsJobModel;
use optimus_workload::{JobId, ModelKind, TrainingMode};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Prefit speed models (3 model kinds × 2 training modes), shared by
/// all cases — fitting is the expensive part and is not under test.
fn model_pool() -> &'static Vec<SpeedModel> {
    static MODELS: OnceLock<Vec<SpeedModel>> = OnceLock::new();
    MODELS.get_or_init(|| {
        let mut pool = Vec::new();
        for kind in [ModelKind::ResNet50, ModelKind::CnnRand, ModelKind::Seq2Seq] {
            for mode in [TrainingMode::Synchronous, TrainingMode::Asynchronous] {
                let profile = kind.profile();
                let truth = PsJobModel::new(profile, mode);
                let mut speed = SpeedModel::new(mode, profile.batch_size as f64);
                for (p, w) in [(1, 1), (2, 2), (4, 4), (8, 8), (4, 8), (8, 4)] {
                    speed.record(p, w, truth.speed(p, w));
                }
                speed.refit().expect("profiled");
                pool.push(speed);
            }
        }
        pool
    })
}

/// `((model_idx, work, progress_pct, units), (cpu_q, mem_q, bw_q))` →
/// JobView. The `_q` values are quarters, so every profile coordinate
/// is a multiple of 0.25.
type JobSeed = ((usize, u64, u32, u32), (u32, u32, u32));

fn make_job(id: u64, seed: &JobSeed) -> JobView {
    let &((model_idx, work, progress_pct, units), (cpu_q, mem_q, bw_q)) = seed;
    let pool = model_pool();
    let profile = ResourceVec::new(
        1.0 + cpu_q as f64 * 0.25,
        0.0,
        2.0 + mem_q as f64 * 0.25,
        bw_q as f64 * 0.25,
    );
    JobView {
        id: JobId(id),
        worker_profile: profile,
        ps_profile: profile,
        remaining_work: 100.0 + work as f64,
        speed: pool[model_idx % pool.len()].clone(),
        progress: progress_pct as f64 / 100.0,
        requested_units: units,
    }
}

/// `(cpu_q, mem_q, bw_q)` quarters → heterogeneous server capacity.
fn make_cluster(servers: &[(u32, u32, u32)]) -> Cluster {
    let caps: Vec<(ResourceVec, &str)> = servers
        .iter()
        .map(|&(cpu_q, mem_q, bw_q)| {
            (
                ResourceVec::new(
                    4.0 + cpu_q as f64 * 0.25,
                    0.0,
                    8.0 + mem_q as f64 * 0.25,
                    1.0 + bw_q as f64 * 0.25,
                ),
                "random",
            )
        })
        .collect();
    Cluster::from_capacities(&caps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn optimized_path_matches_reference(
        servers in prop::collection::vec((0u32..240, 0u32..360, 0u32..16), 3..24),
        seeds in prop::collection::vec(
            ((0usize..6, 0u64..100_000, 0u32..100, 1u32..10), (0u32..40, 0u32..64, 0u32..8)),
            1..16,
        ),
    ) {
        let cluster = make_cluster(&servers);
        let jobs: Vec<JobView> = seeds
            .iter()
            .enumerate()
            .map(|(i, s)| make_job(i as u64, s))
            .collect();

        // Allocator equivalence.
        let fast_allocs = OptimusAllocator::default().allocate(&jobs, &cluster);
        let ref_allocs = ReferenceOptimusAllocator::default().allocate(&jobs, &cluster);
        prop_assert_eq!(&fast_allocs, &ref_allocs, "allocations diverge");

        // Placer equivalence on the agreed allocations.
        let fast_place = OptimusPlacer::default().place(&fast_allocs, &jobs, &cluster);
        let ref_place = ReferenceOptimusPlacer.place(&ref_allocs, &jobs, &cluster);
        prop_assert_eq!(&fast_place, &ref_place, "placements diverge");

        // End-to-end composite equivalence (what the simulator runs).
        let fast = CompositeScheduler::new(
            "optimized",
            Box::new(OptimusAllocator::default()),
            Box::new(OptimusPlacer::default()),
        )
        .schedule(&jobs, &cluster);
        let reference = CompositeScheduler::new(
            "reference",
            Box::new(ReferenceOptimusAllocator::default()),
            Box::new(ReferenceOptimusPlacer),
        )
        .schedule(&jobs, &cluster);
        prop_assert_eq!(fast.allocations(), reference.allocations());
        prop_assert_eq!(fast.placements(), reference.placements());
    }

    #[test]
    fn optimized_path_matches_reference_with_priority_factor(
        servers in prop::collection::vec((0u32..240, 0u32..360, 0u32..16), 3..16),
        seeds in prop::collection::vec(
            ((0usize..6, 0u64..100_000, 0u32..100, 1u32..10), (0u32..40, 0u32..64, 0u32..8)),
            1..12,
        ),
    ) {
        let cluster = make_cluster(&servers);
        let jobs: Vec<JobView> = seeds
            .iter()
            .enumerate()
            .map(|(i, s)| make_job(i as u64, s))
            .collect();
        let fast = OptimusAllocator::default()
            .with_priority_factor(0.95)
            .allocate(&jobs, &cluster);
        let reference = ReferenceOptimusAllocator::default()
            .with_priority_factor(0.95)
            .allocate(&jobs, &cluster);
        prop_assert_eq!(&fast, &reference);
    }
}
