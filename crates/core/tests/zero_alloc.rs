//! Proof that a warm steady-state scheduling round performs **zero**
//! heap allocations.
//!
//! A `#[global_allocator]` shim counts every `alloc`/`realloc`/
//! `alloc_zeroed` and forwards to the system allocator. The test warms
//! a persistent [`RoundScratch`] + [`Schedule`] with two identical
//! rounds (the first sizes every buffer, the second proves the sizes
//! are stable), then asserts the third round touches the allocator
//! exactly zero times.
//!
//! Scope: this measures the *scheduling decision*
//! ([`Scheduler::schedule_into`] with a disabled telemetry handle) —
//! the path `bench_sched` times and the simulator runs every interval.
//! A full simulator tick additionally rebuilds `JobView`s (cloning
//! speed models) and rolls RNG-driven event state, which allocate by
//! design and are not part of the steady-state round contract.
//!
//! The file intentionally holds a single test: the counter is global,
//! and a sibling test running concurrently would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use optimus_cluster::{Cluster, ResourceVec};
use optimus_core::prelude::*;
use optimus_ps::PsJobModel;
use optimus_workload::{JobId, ModelKind, TrainingMode};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A moderately busy fixture: 24 heterogeneous jobs on a 40-server
/// cluster, enough to exercise the heap, the placer's k-probe loop and
/// the shrink-on-unplaceable path.
fn fixture() -> (Vec<JobView>, Cluster) {
    let kinds = [ModelKind::ResNet50, ModelKind::CnnRand, ModelKind::Seq2Seq];
    let modes = [TrainingMode::Synchronous, TrainingMode::Asynchronous];
    let mut jobs = Vec::new();
    for i in 0..24u64 {
        let kind = kinds[i as usize % kinds.len()];
        let mode = modes[i as usize % modes.len()];
        let profile = kind.profile();
        let truth = PsJobModel::new(profile, mode);
        let mut speed = SpeedModel::new(mode, profile.batch_size as f64);
        for (p, w) in [(1, 1), (2, 2), (4, 4), (8, 8), (4, 8), (8, 4)] {
            speed.record(p, w, truth.speed(p, w));
        }
        speed.refit().expect("profiled");
        jobs.push(JobView {
            id: JobId(i),
            worker_profile: ResourceVec::new(1.0 + (i % 4) as f64 * 0.25, 0.0, 2.0, 0.25),
            ps_profile: ResourceVec::new(1.0, 0.0, 2.0 + (i % 3) as f64 * 0.5, 0.5),
            remaining_work: 500.0 + i as f64 * 37.0,
            speed,
            progress: (i % 10) as f64 / 10.0,
            requested_units: 1 + (i % 5) as u32,
        });
    }
    let caps: Vec<(ResourceVec, &str)> = (0..40)
        .map(|s| {
            (
                ResourceVec::new(8.0 + (s % 3) as f64, 0.0, 16.0 + (s % 5) as f64, 2.0),
                "zero-alloc",
            )
        })
        .collect();
    (jobs, Cluster::from_capacities(&caps))
}

#[test]
fn warm_steady_state_round_allocates_nothing() {
    let (jobs, cluster) = fixture();
    let scheduler = OptimusScheduler::build();
    let mut scratch = RoundScratch::default();
    let mut out = Schedule::new(Vec::new(), HashMap::new());

    // Round 1 sizes every buffer; round 2 proves the sizes are stable.
    scheduler.schedule_into(&jobs, &cluster, &mut scratch, &mut out);
    let warm = out.allocations().to_vec();
    scheduler.schedule_into(&jobs, &cluster, &mut scratch, &mut out);

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    scheduler.schedule_into(&jobs, &cluster, &mut scratch, &mut out);
    let after = ALLOC_CALLS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "a warm steady-state round must not touch the heap"
    );
    // The warm round still produced the real answer.
    assert_eq!(out.allocations(), &warm[..]);
    assert!(out.allocations().iter().any(|a| a.workers > 0));
}
