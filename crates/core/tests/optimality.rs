//! Brute-force optimality validation of the §4 heuristics.
//!
//! The allocation program (5)–(8) is NP-hard, so Optimus uses a greedy
//! marginal-gain heuristic. On instances small enough to enumerate
//! exhaustively, the greedy solution should be optimal or near-optimal
//! — these tests pin that quality bound so a regression in the
//! heuristic is caught.

use optimus_cluster::{Cluster, ResourceVec};
use optimus_core::allocation::{OptimusAllocator, ResourceAllocator};
use optimus_core::prelude::*;
use optimus_ps::PsJobModel;
use optimus_workload::{JobId, ModelKind, TrainingMode};

/// A JobView with a truth-fitted speed model.
fn job(id: u64, kind: ModelKind, mode: TrainingMode, remaining: f64) -> JobView {
    let profile = kind.profile();
    let truth = PsJobModel::new(profile, mode);
    let mut speed = SpeedModel::new(mode, profile.batch_size as f64);
    for (p, w) in [(1, 1), (2, 2), (3, 3), (4, 4), (2, 4), (4, 2), (6, 6)] {
        speed.record(p, w, truth.speed(p, w));
    }
    speed.refit().expect("profiled");
    JobView {
        id: JobId(id),
        worker_profile: optimus_workload::job::default_container(),
        ps_profile: optimus_workload::job::default_container(),
        remaining_work: remaining,
        speed,
        progress: 0.5,
        requested_units: 8,
    }
}

/// Sum of estimated remaining times (the paper's objective (5)) for an
/// allocation vector, +∞ when a job gets zero of either task kind.
fn objective(jobs: &[JobView], alloc: &[(u32, u32)]) -> f64 {
    jobs.iter()
        .zip(alloc.iter())
        .map(|(j, &(p, w))| j.remaining_time(p, w))
        .sum()
}

/// Exhaustive minimizer over all feasible (p, w) vectors: every job gets
/// 1..=max tasks of each kind, subject to the total unit budget.
fn brute_force(jobs: &[JobView], budget_units: u32) -> (f64, Vec<(u32, u32)>) {
    let max = budget_units;
    let mut best = (f64::INFINITY, vec![]);
    let mut current = vec![(0u32, 0u32); jobs.len()];
    fn rec(
        jobs: &[JobView],
        max: u32,
        budget: u32,
        idx: usize,
        current: &mut Vec<(u32, u32)>,
        best: &mut (f64, Vec<(u32, u32)>),
    ) {
        if idx == jobs.len() {
            let obj = objective(jobs, current);
            if obj < best.0 {
                *best = (obj, current.clone());
            }
            return;
        }
        for p in 1..=max {
            for w in 1..=max {
                let used = (p + w).div_ceil(2); // units of (1 ps + 1 worker)
                let _ = used;
                // Count capacity in tasks: 2 tasks per unit.
                let tasks = p + w;
                if tasks > budget * 2 {
                    continue;
                }
                let used_so_far: u32 = current[..idx].iter().map(|&(a, b)| a + b).sum();
                if used_so_far + tasks > budget * 2 {
                    continue;
                }
                current[idx] = (p, w);
                rec(jobs, max, budget, idx + 1, current, best);
            }
        }
        current[idx] = (0, 0);
    }
    rec(jobs, max, budget_units, 0, &mut current, &mut best);
    best
}

/// Runs the greedy allocator on a cluster with exactly `units` capacity
/// and returns its objective value.
fn greedy_objective(jobs: &[JobView], units: u32) -> f64 {
    // One big server with exactly `units` worth of containers; only the
    // CPU dimension binds.
    let cluster = Cluster::homogeneous(
        1,
        ResourceVec::new(units as f64 * 10.0, 0.0, units as f64 * 40.0, units as f64),
    );
    let allocs = OptimusAllocator::default().allocate(jobs, &cluster);
    let alloc_pairs: Vec<(u32, u32)> = allocs.iter().map(|a| (a.ps, a.workers)).collect();
    objective(jobs, &alloc_pairs)
}

#[test]
fn greedy_matches_brute_force_single_job() {
    for kind in [ModelKind::ResNet50, ModelKind::CnnRand, ModelKind::Seq2Seq] {
        for mode in [TrainingMode::Synchronous, TrainingMode::Asynchronous] {
            let jobs = vec![job(0, kind, mode, 10_000.0)];
            let units = 5;
            let (opt, _) = brute_force(&jobs, units);
            let greedy = greedy_objective(&jobs, units);
            assert!(
                greedy <= opt * 1.05 + 1.0,
                "{kind:?} {mode:?}: greedy {greedy} vs optimal {opt}"
            );
        }
    }
}

#[test]
fn greedy_near_optimal_two_jobs() {
    // Two competing jobs, tight budget: the greedy objective must stay
    // within 10 % of the exhaustive optimum.
    let cases = vec![
        (
            vec![
                job(0, ModelKind::ResNet50, TrainingMode::Synchronous, 20_000.0),
                job(1, ModelKind::CnnRand, TrainingMode::Asynchronous, 2_000.0),
            ],
            4u32,
        ),
        (
            vec![
                job(0, ModelKind::Seq2Seq, TrainingMode::Synchronous, 5_000.0),
                job(1, ModelKind::Seq2Seq, TrainingMode::Synchronous, 50_000.0),
            ],
            4u32,
        ),
        (
            vec![
                job(0, ModelKind::Dssm, TrainingMode::Asynchronous, 8_000.0),
                job(1, ModelKind::RnnLstm, TrainingMode::Asynchronous, 8_000.0),
            ],
            5u32,
        ),
    ];
    for (jobs, units) in cases {
        let (opt, best) = brute_force(&jobs, units);
        let greedy = greedy_objective(&jobs, units);
        assert!(
            greedy <= opt * 1.10 + 1.0,
            "greedy {greedy} vs optimal {opt} ({best:?})"
        );
    }
}

#[test]
fn greedy_never_beats_brute_force() {
    // Sanity on the harness itself: brute force is a lower bound.
    let jobs = vec![
        job(0, ModelKind::Kaggle, TrainingMode::Synchronous, 3_000.0),
        job(1, ModelKind::Dssm, TrainingMode::Asynchronous, 9_000.0),
    ];
    let units = 4;
    let (opt, _) = brute_force(&jobs, units);
    let greedy = greedy_objective(&jobs, units);
    assert!(greedy >= opt - 1e-6);
}
