//! Deterministic order-indexed parallel runners.
//!
//! PR 2 introduced `run_indexed` for the experiment sweeps in
//! `optimus-bench`; the simulator's per-job refit path now needs the
//! same pattern, and `optimus-bench` depends on `optimus-simulator`,
//! so the runners live here at the bottom of the dependency graph.
//!
//! All runners share one contract: results land **in input order**, so
//! the output is deterministic whenever the worker closure is — thread
//! count and scheduling jitter can change wall-clock, never results.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread count for parallel sections: the `OPTIMUS_THREADS`
/// environment variable when set (and ≥ 1), else the machine's
/// available parallelism.
pub fn available_threads() -> usize {
    if let Ok(v) = std::env::var("OPTIMUS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Fans `f(i, &cells[i])` across `threads` worker threads and returns
/// the results **in input order** regardless of which worker computed
/// which cell or in what sequence they finished.
///
/// Work distribution is a shared atomic cursor (work-stealing, no
/// barriers): an idle worker immediately claims the next unclaimed
/// cell, so wall-clock is bounded by the slowest single cell plus an
/// even share of the rest — near-linear speedup for grids whose cells
/// dwarf thread-spawn cost (every simulation sweep qualifies). Each
/// result lands in the slot of its input index, which makes the output
/// deterministic whenever `f` itself is (all simulator cells are:
/// seeded RNG, no shared mutable state).
///
/// `threads <= 1` (or trivially small inputs) runs serially on the
/// caller's thread with no synchronization at all.
pub fn run_indexed<T, R, F>(cells: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.min(cells.len());
    if threads <= 1 {
        return cells.iter().enumerate().map(|(i, c)| f(i, c)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let r = f(i, &cells[i]);
                *slots[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot")
                .expect("every cell was claimed exactly once")
        })
        .collect()
}

/// In-place variant of [`run_indexed`]: fans `f(i, &mut items[i])`
/// across `threads` workers, each item visited exactly once, and
/// returns the per-item results in input order.
///
/// Because every worker needs exclusive access to its items, the slice
/// is split into `threads` contiguous chunks (static partitioning via
/// `chunks_mut`) instead of the atomic-cursor scheme — `&mut` access
/// through a shared cursor would need per-item locks. Static chunks
/// are a good fit for the simulator's refit fan-out, where per-item
/// cost is roughly uniform.
///
/// Determinism contract is identical to [`run_indexed`]: results are
/// keyed by input index, so the output (and the final state of
/// `items`) is independent of the thread count whenever `f` is
/// deterministic and touches nothing but its own item.
pub fn run_indexed_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.min(n).max(1);
    if threads <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, it)| f(i, it))
            .collect();
    }
    let chunk = n.div_ceil(threads);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for (ci, chunk_items) in items.chunks_mut(chunk).enumerate() {
            let slots = &slots;
            let f = &f;
            scope.spawn(move || {
                for (j, item) in chunk_items.iter_mut().enumerate() {
                    let i = ci * chunk + j;
                    *slots[i].lock().expect("result slot") = Some(f(i, item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot")
                .expect("every item was visited exactly once")
        })
        .collect()
}

/// Chunk-grouped variant of [`run_indexed_mut`] for batch-of-batches
/// work: the slice is first cut into fixed-size groups of `chunk` items
/// (last group possibly short), and `f(g, &mut group)` runs once per
/// group with results returned **in group order**.
///
/// The grouping is a function of the input order and `chunk` alone —
/// never of `threads` — so a worker processing groups `[0..LANES)`,
/// `[LANES..2·LANES)`, … sees exactly the same group boundaries at any
/// thread count. That is what lets the batched fitting engine keep its
/// lane assignment (and therefore its wave schedule) thread-invariant;
/// the usual determinism contract then makes the *results*
/// thread-invariant whenever `f` is deterministic per group.
///
/// Workers claim whole groups through an atomic cursor, so uneven group
/// costs (ragged histories) still balance.
pub fn run_chunks_mut<T, R, F>(items: &mut [T], chunk: usize, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let chunk = chunk.max(1);
    let groups: Vec<&mut [T]> = items.chunks_mut(chunk).collect();
    let n = groups.len();
    let threads = threads.min(n).max(1);
    if threads <= 1 {
        return groups
            .into_iter()
            .enumerate()
            .map(|(g, group)| f(g, group))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cells: Vec<Mutex<Option<&mut [T]>>> =
        groups.into_iter().map(|g| Mutex::new(Some(g))).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let g = cursor.fetch_add(1, Ordering::Relaxed);
                if g >= n {
                    break;
                }
                let group = cells[g]
                    .lock()
                    .expect("group cell")
                    .take()
                    .expect("every group claimed exactly once");
                *slots[g].lock().expect("result slot") = Some(f(g, group));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot")
                .expect("every group was visited exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_input_order() {
        let cells: Vec<usize> = (0..37).collect();
        let serial = run_indexed(&cells, 1, |i, &c| (i, c * 2));
        for threads in [2, 4, 8] {
            let parallel = run_indexed(&cells, threads, |i, &c| (i, c * 2));
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn run_indexed_mut_matches_serial_and_mutates_every_item() {
        for threads in [1, 2, 4, 8] {
            let mut items: Vec<u64> = (0..23).collect();
            let results = run_indexed_mut(&mut items, threads, |i, item| {
                *item += 100;
                (i, *item)
            });
            let expected_items: Vec<u64> = (0..23).map(|v| v + 100).collect();
            let expected_results: Vec<(usize, u64)> = expected_items
                .iter()
                .enumerate()
                .map(|(i, &v)| (i, v))
                .collect();
            assert_eq!(items, expected_items, "threads={threads}");
            assert_eq!(results, expected_results, "threads={threads}");
        }
    }

    #[test]
    fn run_indexed_mut_handles_empty_and_tiny_inputs() {
        let mut empty: Vec<u32> = Vec::new();
        let r = run_indexed_mut(&mut empty, 4, |_, _| 0u32);
        assert!(r.is_empty());
        let mut one = vec![7u32];
        let r = run_indexed_mut(&mut one, 4, |i, item| {
            *item *= 3;
            i
        });
        assert_eq!((r, one), (vec![0], vec![21]));
    }

    #[test]
    fn available_threads_is_at_least_one() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn run_chunks_mut_groups_are_thread_invariant() {
        let serial = {
            let mut items: Vec<u32> = (0..29).collect();
            run_chunks_mut(&mut items, 8, 1, |g, group| (g, group.to_vec()))
        };
        assert_eq!(serial.len(), 4);
        assert_eq!(serial[3].1.len(), 5); // 29 = 3*8 + 5
        for threads in [2, 4, 8] {
            let mut items: Vec<u32> = (0..29).collect();
            let parallel = run_chunks_mut(&mut items, 8, threads, |g, group| {
                for v in group.iter_mut() {
                    *v += 1000;
                }
                (g, group.iter().map(|&v| v - 1000).collect::<Vec<u32>>())
            });
            assert_eq!(serial, parallel, "threads={threads}");
            assert!(items.iter().all(|&v| v >= 1000), "threads={threads}");
        }
    }

    #[test]
    fn run_chunks_mut_handles_empty_input() {
        let mut empty: Vec<u32> = Vec::new();
        let r = run_chunks_mut(&mut empty, 8, 4, |g, _| g);
        assert!(r.is_empty());
    }
}
