//! Offline stand-in for `serde`, API-compatible with the subset this
//! workspace uses.
//!
//! The build environment cannot fetch crates.io dependencies, so this
//! crate provides the same *surface* (`Serialize`/`Deserialize` traits
//! plus `#[derive(Serialize, Deserialize)]`) over a much simpler data
//! model: everything serializes through the JSON [`Value`] tree defined
//! here, and `serde_json` (the sibling shim) renders/parses that tree.
//!
//! Compatibility notes:
//! - Structs serialize to objects in field order; newtype structs are
//!   transparent; unit enum variants serialize to strings; data-carrying
//!   variants are externally tagged (`{"Variant": {...}}`) unless the
//!   type opts into `#[serde(tag = "...")]` internal tagging — exactly
//!   serde's defaults for the shapes present in this workspace.
//! - Missing fields deserialize as `null`, which succeeds only for
//!   `Option` fields (serde's behavior for `Option`).

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{DeError, Value};

/// A type that can render itself into a JSON [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    // serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Real serde borrows `&str` from the input; this Value-based shim
    /// has no borrowed path, so the string leaks. Only static lookup
    /// tables (model profile names) hit this impl, and only if someone
    /// actually deserializes them — an acceptable trade for offline
    /// builds.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("char", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::custom("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($( ( $($n:tt $t:ident),+ ) )+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = $n;
                            $t::from_value(it.next().ok_or_else(|| DeError::custom("tuple too short"))?)?
                        },)+))
                    }
                    _ => Err(DeError::expected("array (tuple)", v)),
                }
            }
        }
    )+};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", v)),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
