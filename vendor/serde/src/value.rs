//! The JSON value tree shared by the `serde` and `serde_json` shims.

use std::fmt;

/// A JSON value. Objects preserve insertion order (matching the field
/// order that derived serializers emit).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integral values render without
    /// a fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds a `Value::Str` (mirrors `serde_json::Value::String`).
    #[allow(non_snake_case)]
    pub fn String(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64, if integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Looks up an object key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A one-word description of the value's kind (for errors).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&Value::Null)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if !matches!(self, Value::Object(_)) {
            *self = Value::Object(Vec::new());
        }
        let Value::Object(entries) = self else {
            unreachable!()
        };
        if let Some(i) = entries.iter().position(|(k, _)| k == key) {
            &mut entries[i].1
        } else {
            entries.push((key.to_string(), Value::Null));
            &mut entries.last_mut().unwrap().1
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render(self, None, 0))
    }
}

/// Renders a value as JSON text. `indent = Some(step)` pretty-prints.
pub fn render(v: &Value, indent: Option<usize>, level: usize) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => render_number(*n),
        Value::Str(s) => render_string(s),
        Value::Array(items) => render_seq(
            items.iter().map(|i| render(i, indent, level + 1)),
            "[",
            "]",
            indent,
            level,
        ),
        Value::Object(entries) => render_seq(
            entries.iter().map(|(k, v)| {
                format!(
                    "{}:{}{}",
                    render_string(k),
                    if indent.is_some() { " " } else { "" },
                    render(v, indent, level + 1)
                )
            }),
            "{",
            "}",
            indent,
            level,
        ),
    }
}

fn render_seq(
    items: impl Iterator<Item = String>,
    open: &str,
    close: &str,
    indent: Option<usize>,
    level: usize,
) -> String {
    let items: Vec<String> = items.collect();
    if items.is_empty() {
        return format!("{open}{close}");
    }
    match indent {
        None => format!("{open}{}{close}", items.join(",")),
        Some(step) => {
            let pad = " ".repeat(step * (level + 1));
            let end_pad = " ".repeat(step * level);
            format!(
                "{open}\n{}\n{end_pad}{close}",
                items
                    .iter()
                    .map(|i| format!("{pad}{i}"))
                    .collect::<Vec<_>>()
                    .join(",\n")
            )
        }
    }
}

fn render_number(n: f64) -> String {
    if !n.is_finite() {
        // serde_json serializes non-finite floats as null.
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        let s = format!("{n}");
        s
    }
}

fn render_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Error: expected `what`, found `found`.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError {
            message: format!("expected {what}, found {}", found.kind()),
        }
    }

    /// A free-form error.
    pub fn custom(message: impl Into<String>) -> DeError {
        DeError {
            message: message.into(),
        }
    }

    /// Error: object is missing a field.
    pub fn missing_field(name: &str) -> DeError {
        DeError {
            message: format!("missing field `{name}`"),
        }
    }

    /// Error: unknown enum variant.
    pub fn unknown_variant(name: &str, ty: &str) -> DeError {
        DeError {
            message: format!("unknown variant `{name}` for enum {ty}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}
