//! Offline stand-in for `crossbeam`, providing the `channel` module
//! subset the workspace uses, backed by `std::sync::mpsc`.

pub mod channel {
    //! Multi-producer channels with the crossbeam-channel API.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half (clonable).
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// The receiving half.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        /// Sends a message; errors if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Blocks with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.inner.try_iter()
        }

        /// Blocking iterator until all senders are gone.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }
}
