//! Offline stand-in for `serde_json`: renders and parses the [`Value`]
//! tree defined by the sibling `serde` shim.
//!
//! Covers the workspace's surface: `to_string`, `to_string_pretty`,
//! `from_str`, `to_value`, `Value` (with `Index`/`IndexMut` by key and a
//! `String` constructor), and `Error`.

pub use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::value::render(&value.to_value(), None, 0))
}

/// Serializes a value to pretty (2-space indented) JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::value::render(&value.to_value(), Some(2), 0))
}

/// Converts a value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Converts a [`Value`] tree into a typed value.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value).map_err(Error::from)
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for json in [
            "null",
            "true",
            "false",
            "42",
            "-3.5",
            "\"hi\\n\"",
            "[1,2]",
            "{}",
        ] {
            let v: Value = from_str(json).unwrap();
            let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "{json}");
        }
    }

    #[test]
    fn object_preserves_order() {
        let v: Value = from_str(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn index_mut_inserts() {
        let mut v: Value = from_str("{}").unwrap();
        v["experiment"] = Value::String("fig12");
        assert_eq!(v["experiment"].as_str(), Some("fig12"));
    }

    #[test]
    fn integral_floats_render_without_fraction() {
        assert_eq!(to_string(&Value::Num(100.0)).unwrap(), "100");
        assert_eq!(to_string(&Value::Num(0.5)).unwrap(), "0.5");
    }
}
