//! Offline stand-in for `proptest`.
//!
//! Provides the workspace's surface — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!`, `Strategy` (ranges, tuples,
//! `prop_map`), `any::<T>()`, `prop::collection::vec`, `prop::bool::ANY`
//! and `ProptestConfig` — as a plain deterministic random-testing
//! harness. Differences from the real crate:
//!
//! - **No shrinking**: a failing case panics with the generated inputs
//!   left to the assertion message.
//! - **Deterministic seeding**: each test's RNG is seeded from a hash of
//!   the test name, so failures reproduce exactly across runs.
//! - Default case count is 64 (set `ProptestConfig::with_cases`).

use rand::{Rng, RngCore, SeedableRng, SplitMix64};
use std::ops::{Range, RangeInclusive};

/// The RNG driving all generation.
pub type TestRng = SplitMix64;

/// Builds the deterministic per-test RNG.
pub fn test_rng(test_name: &str) -> TestRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    TestRng::seed_from_u64(h.finish())
}

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases generated per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        strategy::Map { inner: self, f }
    }

    /// Boxes the strategy (for heterogeneous collections).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($( ( $($n:tt $s:ident),+ ) )+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (0 S0)
    (0 S0, 1 S1)
    (0 S0, 1 S1, 2 S2)
    (0 S0, 1 S1, 2 S2, 3 S3)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let m: f64 = rng.gen_range(-1.0f64..1.0);
        let e: i32 = rng.gen_range(-60i32..60);
        m * (e as f64).exp2()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub mod strategy {
    //! Combinator types.

    use super::{Strategy, TestRng};

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<super::BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `options` (must be non-empty).
        pub fn new(options: Vec<super::BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            use rand::Rng;
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }
}

/// Boxes a strategy (used by `prop_oneof!` to build uniform unions).
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Generates `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform `true`/`false`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;
}

pub mod prelude {
    //! Everything a test module needs.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    pub mod prop {
        //! The `prop::` namespace (`prop::collection`, `prop::bool`).
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]`-able function running `config.cases` random
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:tt;) => {};
    (cfg = $cfg:tt;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($pat,)+) = ($( $crate::Strategy::generate(&($strat), &mut __rng), )+);
                $body
            }
        }
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
}

/// Skips the current case when the precondition does not hold.
///
/// Real proptest tracks a rejection budget; this shim simply moves to
/// the next generated case (it expands to `continue` and therefore only
/// works directly inside a `proptest!` body, which is where the
/// workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality counterpart of [`prop_assert_eq!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::boxed_strategy($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 1usize..10, (a, b) in (0.0f64..1.0, any::<bool>())) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&a));
            let _ = b;
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn oneof_and_map(x in prop_oneof![ (0u32..5).prop_map(|v| v * 2), 100u32..101 ]) {
            prop_assert!(x == 100 || (x % 2 == 0 && x < 10), "{x}");
        }
    }

    #[test]
    fn deterministic_rng() {
        let mut a = super::test_rng("t");
        let mut b = super::test_rng("t");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
