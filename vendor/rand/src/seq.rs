//! Sequence helpers (`SliceRandom`).

use crate::{Rng, RngCore};

/// Randomized slice operations.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = rng.gen_range(0..self.len());
            self.get(i)
        }
    }
}
