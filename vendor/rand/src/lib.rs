//! Offline stand-in for `rand` 0.8, covering the workspace's surface:
//! `Rng` (`gen`, `gen_range`, `gen_bool`), `SeedableRng::seed_from_u64`,
//! and `seq::SliceRandom::shuffle`.
//!
//! Streams are deterministic given a seed but are NOT bit-compatible
//! with crates.io `rand` — everything in this workspace only relies on
//! determinism and statistical quality, not on golden values.

use std::ops::{Range, RangeInclusive};

pub mod seq;

/// The raw generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types sampleable uniformly over their natural domain (`rand`'s
/// `Standard` distribution).
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (uniform_u128(rng, span)) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (uniform_u128(rng, span)) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by widening multiplication (unbiased
/// enough for simulation purposes).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// SplitMix64: seeds other generators and serves as a simple stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given state.
    pub fn new(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

pub mod rngs {
    //! Named generators.
    pub use crate::SplitMix64;

    /// The "standard" generator (here: SplitMix64).
    pub type StdRng = SplitMix64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: usize = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
            let m: u32 = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&m));
        }
    }

    #[test]
    fn unit_float_distribution_covers() {
        let mut rng = SplitMix64::seed_from_u64(2);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }
}
