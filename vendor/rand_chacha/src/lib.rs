//! Offline stand-in for `rand_chacha`.
//!
//! Exposes `ChaCha8Rng`/`ChaCha12Rng`/`ChaCha20Rng` names backed by
//! xoshiro256++ (seeded via SplitMix64). Streams are deterministic
//! given a seed but not bit-compatible with the real crate — the
//! workspace relies on determinism and statistical quality only.

use rand::{RngCore, SeedableRng, SplitMix64};

/// xoshiro256++ — a small, fast, high-quality 256-bit generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256PlusPlus {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

/// The name the workspace uses everywhere.
pub type ChaCha8Rng = Xoshiro256PlusPlus;
/// Alias for API parity with the real crate.
pub type ChaCha12Rng = Xoshiro256PlusPlus;
/// Alias for API parity with the real crate.
pub type ChaCha20Rng = Xoshiro256PlusPlus;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_distinct_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        let _: bool = rng.gen();
    }
}
