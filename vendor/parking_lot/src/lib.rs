//! Offline stand-in for `parking_lot`: wraps `std::sync` locks behind
//! parking_lot's non-poisoning API (a poisoned std lock panics, which
//! matches parking_lot's behavior of not tracking poison at all for
//! the purposes of this workspace).

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with parking_lot's infallible API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .expect("RwLock poisoned (a writer panicked)")
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .expect("RwLock poisoned (a writer panicked)")
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .expect("RwLock poisoned (a writer panicked)")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A mutex with parking_lot's infallible API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .expect("Mutex poisoned (a holder panicked)")
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .expect("Mutex poisoned (a holder panicked)")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}
