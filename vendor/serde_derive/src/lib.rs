//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! item shapes this workspace uses — named-field structs, tuple/newtype
//! structs, unit structs, and enums with unit / named-field / tuple
//! variants, plus `#[serde(tag = "...")]` internal tagging — without
//! depending on `syn`/`quote` (token parsing is done by hand).
//!
//! Generated impls target the sibling `serde` shim's Value-based
//! `Serialize`/`Deserialize` traits and mirror real serde's JSON
//! representations for these shapes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------

struct Item {
    name: String,
    /// `Some(tag_field)` when the item carries `#[serde(tag = "...")]`.
    tag: Option<String>,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut tag = None;

    // Outer attributes (doc comments, #[serde(tag = "...")], other derives).
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            if let Some(t) = parse_serde_tag(g.stream()) {
                tag = Some(t);
            }
        }
        i += 2;
    }
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    skip_generics(&tokens, &mut i);

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => ItemKind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde derive: enum without a body"),
        },
        other => panic!("serde derive: expected struct or enum, found `{other}`"),
    };

    Item { name, tag, kind }
}

/// Extracts `tag = "..."` from a `serde(...)` attribute body, if present.
fn parse_serde_tag(attr: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut j = 0;
            while j < inner.len() {
                if let TokenTree::Ident(key) = &inner[j] {
                    if key.to_string() == "tag" {
                        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                            (inner.get(j + 1), inner.get(j + 2))
                        {
                            if eq.as_char() == '=' {
                                return Some(lit.to_string().trim_matches('"').to_string());
                            }
                        }
                    }
                }
                j += 1;
            }
            None
        }
        _ => None,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            &tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn skip_generics(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 0i32;
        while let Some(t) = tokens.get(*i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            *i += 1;
                            return;
                        }
                    }
                    _ => {}
                }
            }
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde derive: expected identifier, found {other:?}"),
    }
}

/// `name: Type, ...` inside a brace group → field names, skipping
/// attributes, visibility, and type tokens (angle-bracket aware).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2; // '#' + bracket group
        }
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        skip_type(&tokens, &mut i);
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances past one type, stopping at a top-level `,` (angle brackets
/// tracked; grouped tokens are atomic).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma does not add a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

/// Derives `serde::Serialize` (Value-based shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries = fields
                .iter()
                .map(|f| format!(
                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                ))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| serialize_variant_arm(name, v, item.tag.as_deref()))
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    );
    out.parse()
        .expect("serde derive: generated Serialize impl parses")
}

fn serialize_variant_arm(enum_name: &str, v: &Variant, tag: Option<&str>) -> String {
    let vname = &v.name;
    match (&v.fields, tag) {
        (VariantFields::Unit, None) => format!(
            "{enum_name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        (VariantFields::Unit, Some(tag)) => format!(
            "{enum_name}::{vname} => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{tag}\"), \
                  ::serde::Value::Str(::std::string::String::from(\"{vname}\")))]),"
        ),
        (VariantFields::Named(fields), tag) => {
            let binds = fields.join(", ");
            let mut entries: Vec<String> = Vec::new();
            if let Some(tag) = tag {
                entries.push(format!(
                    "(::std::string::String::from(\"{tag}\"), \
                      ::serde::Value::Str(::std::string::String::from(\"{vname}\")))"
                ));
            }
            entries.extend(fields.iter().map(|f| {
                format!("(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))")
            }));
            let obj = format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            );
            let value = if tag.is_some() {
                obj
            } else {
                format!(
                    "::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), {obj})])"
                )
            };
            format!("{enum_name}::{vname} {{ {binds} }} => {value},")
        }
        (VariantFields::Tuple(n), _) => {
            let binds = (0..*n)
                .map(|k| format!("x{k}"))
                .collect::<Vec<_>>()
                .join(", ");
            let inner = if *n == 1 {
                "::serde::Serialize::to_value(x0)".to_string()
            } else {
                let items = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_value(x{k})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("::serde::Value::Array(::std::vec![{items}])")
            };
            format!(
                "{enum_name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{vname}\"), {inner})]),"
            )
        }
    }
}

/// Derives `serde::Deserialize` (Value-based shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => format!(
            "match v {{\n\
                 ::serde::Value::Object(_) => ::std::result::Result::Ok({name} {{ {} }}),\n\
                 other => ::std::result::Result::Err(::serde::DeError::expected(\"object\", other)),\n\
             }}",
            named_field_inits(fields)
        ),
        ItemKind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        ItemKind::TupleStruct(n) => {
            let inits = (0..*n)
                .map(|k| format!(
                    "::serde::Deserialize::from_value(items.get({k}).unwrap_or(&::serde::Value::Null))?"
                ))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "match v {{\n\
                     ::serde::Value::Array(items) => ::std::result::Result::Ok({name}({inits})),\n\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\"array\", other)),\n\
                 }}"
            )
        }
        ItemKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemKind::Enum(variants) => match &item.tag {
            Some(tag) => deserialize_tagged_enum(name, variants, tag),
            None => deserialize_external_enum(name, variants),
        },
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse()
        .expect("serde derive: generated Deserialize impl parses")
}

/// `f1: from_value(src.get("f1")...)?, ...` — fields read from a value
/// bound as `v` in scope.
fn named_field_inits(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| format!(
            "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\").unwrap_or(&::serde::Value::Null))?"
        ))
        .collect::<Vec<_>>()
        .join(", ")
}

fn deserialize_external_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
        .collect::<Vec<_>>()
        .join("\n");
    let data_arms = variants
        .iter()
        .filter_map(|var| match &var.fields {
            VariantFields::Unit => None,
            VariantFields::Named(fields) => {
                let inits = fields
                    .iter()
                    .map(|f| format!(
                        "{f}: ::serde::Deserialize::from_value(inner.get(\"{f}\").unwrap_or(&::serde::Value::Null))?"
                    ))
                    .collect::<Vec<_>>()
                    .join(", ");
                Some(format!(
                    "\"{0}\" => ::std::result::Result::Ok({name}::{0} {{ {inits} }}),",
                    var.name
                ))
            }
            VariantFields::Tuple(1) => Some(format!(
                "\"{0}\" => ::std::result::Result::Ok({name}::{0}(::serde::Deserialize::from_value(inner)?)),",
                var.name
            )),
            VariantFields::Tuple(n) => {
                let inits = (0..*n)
                    .map(|k| format!(
                        "::serde::Deserialize::from_value(inner.as_array().and_then(|a| a.get({k})).unwrap_or(&::serde::Value::Null))?"
                    ))
                    .collect::<Vec<_>>()
                    .join(", ");
                Some(format!(
                    "\"{0}\" => ::std::result::Result::Ok({name}::{0}({inits})),",
                    var.name
                ))
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    format!(
        "match v {{\n\
             ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => ::std::result::Result::Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n\
             }},\n\
             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (key, inner) = &entries[0];\n\
                 match key.as_str() {{\n\
                     {data_arms}\n\
                     other => ::std::result::Result::Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n\
                 }}\n\
             }}\n\
             other => ::std::result::Result::Err(::serde::DeError::expected(\"enum {name}\", other)),\n\
         }}"
    )
}

fn deserialize_tagged_enum(name: &str, variants: &[Variant], tag: &str) -> String {
    let arms = variants
        .iter()
        .map(|var| match &var.fields {
            VariantFields::Unit => format!(
                "\"{0}\" => ::std::result::Result::Ok({name}::{0}),",
                var.name
            ),
            VariantFields::Named(fields) => format!(
                "\"{0}\" => ::std::result::Result::Ok({name}::{0} {{ {1} }}),",
                var.name,
                named_field_inits(fields)
            ),
            VariantFields::Tuple(_) => panic!(
                "serde derive shim: tuple variants are not supported with #[serde(tag)] \
                 (real serde rejects these too)"
            ),
        })
        .collect::<Vec<_>>()
        .join("\n");
    format!(
        "match v.get(\"{tag}\").and_then(::serde::Value::as_str) {{\n\
             ::std::option::Option::Some(tag_value) => match tag_value {{\n\
                 {arms}\n\
                 other => ::std::result::Result::Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n\
             }},\n\
             ::std::option::Option::None => ::std::result::Result::Err(::serde::DeError::missing_field(\"{tag}\")),\n\
         }}"
    )
}
