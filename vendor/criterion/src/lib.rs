//! Offline stand-in for `criterion`.
//!
//! Implements the macro/type surface the workspace's benches use —
//! `criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` + `bench_with_input`, `BenchmarkId`, `black_box` —
//! as a simple wall-clock harness: per benchmark it warms up briefly,
//! then times `sample_size` samples and prints min / median / mean.
//! No statistical outlier analysis, no HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(400);
/// Warm-up budget per benchmark.
const WARMUP_TIME: Duration = Duration::from_millis(100);

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Passed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    /// Iterations to run per sample (tuned during warm-up).
    iters_per_sample: u64,
    /// Collected per-iteration times, one entry per sample.
    samples: Vec<f64>,
    /// Number of samples to record.
    sample_count: usize,
    /// True while tuning (warm-up), false while measuring.
    warming_up: bool,
}

impl Bencher {
    /// Times the closure.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.warming_up {
            // Tune iterations-per-sample on a short budget.
            let start = Instant::now();
            let mut iters: u64 = 0;
            while start.elapsed() < WARMUP_TIME {
                black_box(f());
                iters += 1;
            }
            let per_iter = WARMUP_TIME.as_secs_f64() / iters.max(1) as f64;
            let per_sample = TARGET_SAMPLE_TIME.as_secs_f64() / self.sample_count.max(1) as f64;
            self.iters_per_sample = ((per_sample / per_iter).round() as u64).max(1);
            return;
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed / self.iters_per_sample as f64);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_count: usize, f: &mut F) {
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_count,
        warming_up: true,
    };
    f(&mut bencher); // warm-up + tuning pass
    bencher.warming_up = false;
    f(&mut bencher); // measured pass
    let mut samples = std::mem::take(&mut bencher.samples);
    if samples.is_empty() {
        println!("{label:<50} (no samples — closure never called iter)");
        return;
    }
    samples.sort_by(f64::total_cmp);
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{label:<50} time: [{} {} {}] ({} samples x {} iters)",
        format_time(min),
        format_time(median),
        format_time(mean),
        samples.len(),
        bencher.iters_per_sample,
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
