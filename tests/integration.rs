//! End-to-end integration tests spanning all crates.

use optimus::prelude::*;

fn paper_workload(n: usize, seed: u64) -> Vec<JobSpec> {
    WorkloadGenerator::new(
        ArrivalProcess::UniformRandom {
            count: n,
            horizon_s: 4_000.0,
        },
        seed,
    )
    .with_target_job_seconds(Some(2_400.0))
    .generate()
}

fn quick_config(seed: u64) -> SimConfig {
    SimConfig {
        interval_s: 300.0,
        max_time_s: 120_000.0,
        seed,
        ..SimConfig::default()
    }
}

#[test]
fn every_scheduler_completes_the_workload() {
    for build in [
        OptimusScheduler::build as fn() -> CompositeScheduler,
        DrfScheduler::build,
        TetrisScheduler::build,
    ] {
        let mut sim = Simulation::new(
            Cluster::paper_testbed(),
            paper_workload(5, 3),
            Box::new(build()),
            quick_config(3),
        );
        let report = sim.run();
        assert_eq!(report.unfinished_jobs, 0, "{}", report.scheduler);
        assert_eq!(report.jct.len(), 5);
        // Makespan bounds every individual JCT.
        for &(id, jct) in &report.jct {
            assert!(jct > 0.0, "{id:?}");
            assert!(jct <= report.makespan + 1e-6);
        }
    }
}

#[test]
fn simulations_are_deterministic() {
    let run = || {
        let mut sim = Simulation::new(
            Cluster::paper_testbed(),
            paper_workload(4, 9),
            Box::new(OptimusScheduler::build()),
            quick_config(9),
        );
        sim.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.jct, b.jct);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.scale_events, b.scale_events);
    assert_eq!(a.chunks_moved, b.chunks_moved);
}

#[test]
fn optimus_beats_both_baselines_on_the_headline_workload() {
    // The paper's central claim, averaged over three seeds so one
    // unlucky draw cannot flip it.
    let seeds = [17u64, 23, 31];
    let mut totals = std::collections::HashMap::new();
    for &seed in &seeds {
        let jobs = WorkloadGenerator::new(ArrivalProcess::paper_default(9), seed)
            .with_target_job_seconds(Some(7_200.0))
            .generate();
        for (name, build, assignment) in [
            (
                "Optimus",
                OptimusScheduler::build as fn() -> CompositeScheduler,
                AssignmentPolicy::Paa,
            ),
            ("DRF", DrfScheduler::build, AssignmentPolicy::MxnetDefault),
            (
                "Tetris",
                TetrisScheduler::build,
                AssignmentPolicy::MxnetDefault,
            ),
        ] {
            let cfg = SimConfig {
                assignment,
                seed,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(
                Cluster::paper_testbed(),
                jobs.clone(),
                Box::new(build()),
                cfg,
            );
            let report = sim.run();
            assert_eq!(report.unfinished_jobs, 0, "{name} seed {seed}");
            let entry = totals.entry(name).or_insert((0.0, 0.0));
            entry.0 += report.avg_jct();
            entry.1 += report.makespan;
        }
    }
    let optimus = totals["Optimus"];
    for name in ["DRF", "Tetris"] {
        let other = totals[name];
        assert!(
            other.0 > 1.2 * optimus.0,
            "{name} JCT {:.0} should exceed Optimus {:.0} by ≥ 20 %",
            other.0,
            optimus.0
        );
        assert!(
            other.1 > 1.1 * optimus.1,
            "{name} makespan {:.0} should exceed Optimus {:.0} by ≥ 10 %",
            other.1,
            optimus.1
        );
    }
}

#[test]
fn online_estimates_drive_scheduling_not_ground_truth() {
    // The simulator's scheduler view must come from the fitted models:
    // after a run, every job's convergence estimator holds a model whose
    // prediction is close to (but not exactly) the hidden truth.
    let mut sim = Simulation::new(
        Cluster::paper_testbed(),
        paper_workload(3, 21),
        Box::new(OptimusScheduler::build()),
        quick_config(21),
    );
    let _ = sim.run();
    // Jobs that finish within their first scheduling interval never get
    // a refit — every longer-lived job must have an accurate model.
    let mut fitted = 0;
    for job in sim.jobs() {
        assert!(job.speed_model.is_fit(), "{}", job.spec.id);
        if let Some(pred) = job.convergence.predict() {
            let truth = job.true_total_steps;
            let rel = (pred.total_steps as f64 - truth as f64).abs() / truth as f64;
            assert!(
                rel < 0.5,
                "{}: predicted {} vs true {truth}",
                job.spec.id,
                pred.total_steps
            );
            fitted += 1;
        }
    }
    assert!(fitted >= 2, "most jobs live long enough to be fitted");
}

#[test]
fn paa_assignment_accelerates_the_same_workload() {
    // The same jobs under the same scheduler, PAA vs stock MXNet block
    // assignment: PAA must not be slower overall (§5.3 / Fig 20).
    let run = |assignment| {
        let cfg = SimConfig {
            assignment,
            ..quick_config(33)
        };
        let mut sim = Simulation::new(
            Cluster::paper_testbed(),
            paper_workload(5, 33),
            Box::new(OptimusScheduler::build()),
            cfg,
        );
        sim.run()
    };
    let paa = run(AssignmentPolicy::Paa);
    let mxnet = run(AssignmentPolicy::MxnetDefault);
    assert_eq!(paa.unfinished_jobs, 0);
    assert_eq!(mxnet.unfinished_jobs, 0);
    assert!(
        paa.makespan <= mxnet.makespan * 1.02,
        "PAA {:.0} vs MXNet {:.0}",
        paa.makespan,
        mxnet.makespan
    );
}

#[test]
fn straggler_mitigation_limits_damage() {
    use optimus::ps::StragglerPolicy;
    // With injection on, the monitor's detection/replacement must keep
    // the slowdown bounded relative to a run with detection disabled.
    let run = |detect: bool| {
        let mut policy = StragglerPolicy::with_injection(0.0015);
        if !detect {
            policy.detection_ratio = 0.0; // never replace
        }
        let cfg = SimConfig {
            straggler: policy,
            ..quick_config(55)
        };
        let mut sim = Simulation::new(
            Cluster::paper_testbed(),
            paper_workload(4, 55),
            Box::new(OptimusScheduler::build()),
            cfg,
        );
        sim.run()
    };
    let with_detection = run(true);
    let without = run(false);
    assert_eq!(with_detection.unfinished_jobs, 0);
    assert!(with_detection.straggler_replacements > 0);
    assert_eq!(without.straggler_replacements, 0);
    // Detection should not be (much) worse than letting stragglers run.
    assert!(
        with_detection.avg_jct() < without.avg_jct() * 1.15,
        "detection {:.0} vs none {:.0}",
        with_detection.avg_jct(),
        without.avg_jct()
    );
}

#[test]
fn orchestrator_runs_the_same_scheduler_decisions() {
    use optimus::core::JobView;
    use optimus::orchestrator::{ApiServer, NodeRecord, SchedulerPod};

    // The §5.5 deployment and the library scheduler must agree on task
    // counts for the same cluster and jobs.
    let cluster = Cluster::paper_testbed();
    let api = ApiServer::new();
    for server in cluster.servers() {
        api.create_node(&NodeRecord::ready(
            format!("node-{:02}", server.id().0),
            server.capacity(),
        ))
        .expect("fresh node");
    }

    let profile = ModelKind::Seq2Seq.profile();
    let truth = PsJobModel::new(profile, TrainingMode::Synchronous);
    let mut speed = SpeedModel::new(TrainingMode::Synchronous, profile.batch_size as f64);
    for (p, w) in [(1, 1), (2, 2), (4, 4), (8, 8), (4, 8)] {
        speed.record(p, w, truth.speed(p, w));
    }
    speed.refit().expect("profiled");
    let jobs = vec![JobView {
        id: JobId(0),
        worker_profile: optimus::workload::job::default_container(),
        ps_profile: optimus::workload::job::default_container(),
        remaining_work: 10_000.0,
        speed,
        progress: 0.5,
        requested_units: 4,
    }];

    let direct = OptimusScheduler::build().schedule(&jobs, &cluster);
    let direct_tasks = direct.total_tasks();

    let mut pod = SchedulerPod::launch(api.clone(), Box::new(OptimusScheduler::build()));
    let out = pod.reconcile(&jobs).expect("healthy cluster");
    assert_eq!(out.pods_created as u64, direct_tasks);
}
