//! Cross-crate property tests: invariants that must hold for any
//! workload, configuration, or seed.

use optimus::core::allocation::ResourceAllocator;
use optimus::core::placement::TaskPlacer;
use optimus::core::JobView;
use optimus::prelude::*;
use proptest::prelude::*;

/// Builds a JobView with a speed model fitted from ground truth.
fn job_view(id: u64, model: ModelKind, mode: TrainingMode, remaining: f64) -> JobView {
    let profile = model.profile();
    let truth = PsJobModel::new(profile, mode);
    let mut speed = SpeedModel::new(mode, profile.batch_size as f64);
    for (p, w) in [(1, 1), (2, 2), (4, 4), (8, 8), (4, 8), (8, 4)] {
        speed.record(p, w, truth.speed(p, w));
    }
    speed.refit().expect("profiled");
    JobView {
        id: JobId(id),
        worker_profile: optimus::workload::job::default_container(),
        ps_profile: optimus::workload::job::default_container(),
        remaining_work: remaining,
        speed,
        progress: 0.5,
        requested_units: 8,
    }
}

fn arbitrary_jobs() -> impl Strategy<Value = Vec<JobView>> {
    prop::collection::vec((0usize..9, prop::bool::ANY, 100.0f64..100_000.0), 1..12).prop_map(
        |specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (model_idx, sync, remaining))| {
                    let mode = if sync {
                        TrainingMode::Synchronous
                    } else {
                        TrainingMode::Asynchronous
                    };
                    job_view(i as u64, ModelKind::ALL[model_idx], mode, remaining)
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No allocator ever exceeds aggregate cluster capacity, and every
    /// allocation row stays non-degenerate (both-or-neither task kinds
    /// for Optimus' starter logic).
    #[test]
    fn allocators_respect_capacity(jobs in arbitrary_jobs()) {
        use optimus::core::allocation::{DrfAllocator, FifoAllocator, OptimusAllocator, TetrisAllocator};
        let cluster = Cluster::paper_testbed();
        let allocators: Vec<Box<dyn ResourceAllocator>> = vec![
            Box::new(OptimusAllocator::default()),
            Box::new(DrfAllocator::default()),
            Box::new(TetrisAllocator::default()),
            Box::new(FifoAllocator),
        ];
        for alloc in &allocators {
            let rows = alloc.allocate(&jobs, &cluster);
            prop_assert_eq!(rows.len(), jobs.len());
            let mut used = ResourceVec::zero();
            for (row, job) in rows.iter().zip(jobs.iter()) {
                prop_assert_eq!(row.job, job.id);
                used += row.demand(job);
            }
            prop_assert!(used.fits_within(&cluster.total_capacity()));
        }
    }

    /// Every placer's output fits on the physical servers, never places
    /// more than allocated, and keeps at least one PS and one worker for
    /// any job it returns.
    #[test]
    fn placers_respect_servers(jobs in arbitrary_jobs()) {
        use optimus::core::allocation::OptimusAllocator;
        use optimus::core::placement::{OptimusPlacer, PackPlacer, SpreadPlacer};
        use std::collections::HashMap;
        let cluster = Cluster::paper_testbed();
        let allocations = OptimusAllocator::default().allocate(&jobs, &cluster);
        let placers: Vec<Box<dyn TaskPlacer>> = vec![
            Box::new(OptimusPlacer::default()),
            Box::new(SpreadPlacer),
            Box::new(PackPlacer),
        ];
        for placer in &placers {
            let placements = placer.place(&allocations, &jobs, &cluster);
            let mut per_server: HashMap<ServerId, ResourceVec> = HashMap::new();
            for (jid, placement) in &placements {
                let job = jobs.iter().find(|j| j.id == *jid).expect("known job");
                let alloc = allocations.iter().find(|a| a.job == *jid).expect("row");
                let ps: u32 = placement.iter().map(|(_, c)| c.ps).sum();
                let w: u32 = placement.iter().map(|(_, c)| c.workers).sum();
                prop_assert!(ps >= 1 && w >= 1);
                prop_assert!(ps <= alloc.ps && w <= alloc.workers);
                for (sid, c) in placement {
                    let d = job.worker_profile * c.workers as f64
                        + job.ps_profile * c.ps as f64;
                    *per_server.entry(*sid).or_default() += d;
                }
            }
            for (sid, used) in per_server {
                let cap = cluster.server(sid).unwrap().capacity();
                prop_assert!(used.fits_within(&cap), "{sid}: {used} > {cap}");
            }
        }
    }

    /// Any generated workload simulates to completion under Optimus with
    /// zero unfinished jobs and non-negative metrics.
    #[test]
    fn simulation_totality(seed in 0u64..500, n_jobs in 1usize..5) {
        let jobs = WorkloadGenerator::new(
            ArrivalProcess::UniformRandom { count: n_jobs, horizon_s: 2_000.0 },
            seed,
        )
        .with_target_job_seconds(Some(1_500.0))
        .generate();
        let cfg = SimConfig {
            interval_s: 300.0,
            max_time_s: 200_000.0,
            seed,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(
            Cluster::paper_testbed(),
            jobs,
            Box::new(OptimusScheduler::build()),
            cfg,
        );
        let report = sim.run();
        prop_assert_eq!(report.unfinished_jobs, 0);
        prop_assert!(report.makespan > 0.0);
        prop_assert!(report.scaling_overhead_s >= 0.0);
        for &(_, jct) in &report.jct {
            prop_assert!(jct > 0.0 && jct.is_finite());
        }
    }

    /// The ground-truth speed functions are positive, finite and bounded
    /// by the compute-only upper bound for every model and configuration.
    #[test]
    fn speed_physics_sane(
        model_idx in 0usize..9,
        sync in prop::bool::ANY,
        p in 1u32..40,
        w in 1u32..40,
    ) {
        let profile = ModelKind::ALL[model_idx].profile();
        let mode = if sync { TrainingMode::Synchronous } else { TrainingMode::Asynchronous };
        let truth = PsJobModel::new(profile, mode);
        let speed = truth.speed(p, w);
        prop_assert!(speed > 0.0 && speed.is_finite());
        // Compute alone lower-bounds the step time, so it upper-bounds
        // the speed.
        let compute = truth.minibatch(w) * profile.forward_time_per_example
            + profile.backward_time;
        let bound = match mode {
            TrainingMode::Synchronous => 1.0 / compute,
            TrainingMode::Asynchronous => w as f64 / compute,
        };
        prop_assert!(speed <= bound * (1.0 + 1e-9), "{speed} > {bound}");
    }

    /// The JCT decomposition is a partition: for every job,
    /// `queue + run + overhead + stall` accrues to exactly the reported
    /// completion time — under injected server failures and straggler
    /// replacement, across arbitrary seeds. Unfinished jobs settle at
    /// the simulation cap, so their bucket sums all extend to the same
    /// absolute end instant.
    #[test]
    fn jct_decomposition_partitions_completion_time(
        seed in 0u64..200,
        n_jobs in 1usize..5,
        fail_servers in prop::collection::vec(0usize..13, 0..3),
    ) {
        let jobs = WorkloadGenerator::new(
            ArrivalProcess::UniformRandom { count: n_jobs, horizon_s: 2_000.0 },
            seed,
        )
        .with_target_job_seconds(Some(1_500.0))
        .generate();
        let submits: std::collections::HashMap<u64, f64> =
            jobs.iter().map(|j| (j.id.0, j.submit_time)).collect();
        let cfg = SimConfig {
            interval_s: 300.0,
            max_time_s: 120_000.0,
            seed,
            straggler: optimus::ps::StragglerPolicy::with_injection(0.001),
            server_failures: fail_servers
                .iter()
                .enumerate()
                .map(|(i, &s)| (400.0 + 300.0 * i as f64, ServerId(s)))
                .collect(),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(
            Cluster::paper_testbed(),
            jobs,
            Box::new(OptimusScheduler::build()),
            cfg,
        );
        let report = sim.run();
        prop_assert_eq!(report.breakdown.len(), n_jobs);
        let mut unfinished_end: Option<f64> = None;
        for b in &report.breakdown {
            prop_assert!(b.queue_s >= 0.0 && b.run_s >= 0.0);
            prop_assert!(b.overhead_s >= 0.0 && b.stall_s >= 0.0);
            let sum = b.queue_s + b.run_s + b.overhead_s + b.stall_s;
            let submit = submits[&b.job.0];
            match b.jct {
                Some(jct) => {
                    // A handful of float additions separate the bucket
                    // sum from `finish - submit`; at these magnitudes
                    // 1e-6 s is orders beyond the accumulated ulps.
                    prop_assert!(
                        (sum - jct).abs() <= 1e-6,
                        "job {}: {sum} != jct {jct}", b.job.0
                    );
                    let reported = report
                        .jct
                        .iter()
                        .find(|(id, _)| *id == b.job)
                        .map(|&(_, t)| t)
                        .expect("finished job in report.jct");
                    prop_assert_eq!(jct.to_bits(), reported.to_bits());
                }
                None => {
                    // All unfinished clocks stop at the same cap tick.
                    let end = sum + submit;
                    if let Some(prev) = unfinished_end {
                        prop_assert!((end - prev).abs() <= 1e-6);
                    }
                    unfinished_end = Some(end);
                }
            }
        }
    }

    /// Workload generation is a pure function of its seed.
    #[test]
    fn workloads_deterministic(seed in any::<u64>()) {
        let make = || {
            WorkloadGenerator::new(ArrivalProcess::paper_default(6), seed)
                .generate()
                .iter()
                .map(|j| (j.id, j.model, j.mode, j.submit_time.to_bits(), j.dataset_scale.to_bits()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(make(), make());
    }
}
