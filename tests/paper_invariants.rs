//! Tests pinning the paper's quantitative claims that this reproduction
//! commits to (the per-figure "shape" checks; see EXPERIMENTS.md).

use optimus::prelude::*;

/// Fig 2: single-GPU training times span minutes to days–weeks.
#[test]
fn fig2_training_time_span() {
    let times: Vec<f64> = ModelKind::ALL
        .iter()
        .map(|m| m.profile().single_gpu_training_time(0.01))
        .collect();
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0, f64::max);
    assert!(min < 600.0, "fastest should be minutes: {min}");
    assert!(max > 250_000.0, "slowest should be days-weeks: {max}");
    assert!(max / min > 1_000.0);
}

/// Fig 4(a): with p + w = 20 fixed, ResNet-50 sync speed peaks at an
/// interior split near the paper's (w = 8, p = 12).
#[test]
fn fig4a_interior_peak() {
    let model = PsJobModel::new(ModelKind::ResNet50.profile(), TrainingMode::Synchronous);
    let best_w = (1..20)
        .max_by(|&a, &b| model.speed(20 - a, a).total_cmp(&model.speed(20 - b, b)))
        .expect("non-empty");
    assert!((5..=11).contains(&best_w), "peak at w = {best_w}");
}

/// Fig 4(b): at a 1:1 ratio, speedup has diminishing returns.
#[test]
fn fig4b_diminishing_returns() {
    let model = PsJobModel::new(ModelKind::ResNet50.profile(), TrainingMode::Synchronous);
    let g1 = model.speed(10, 10) / model.speed(5, 5);
    let g2 = model.speed(20, 20) / model.speed(10, 10);
    assert!(g1 > 1.0 && g2 > 0.9);
    assert!(g2 < g1, "returns must diminish: {g1} then {g2}");
    assert!(g1 < 2.0, "doubling resources must not double speed");
}

/// Fig 8: ~10 profiled samples suffice for < 10 % speed-model error.
#[test]
fn fig8_ten_samples_suffice() {
    let profile = ModelKind::ResNet50.profile();
    let truth = PsJobModel::new(profile, TrainingMode::Synchronous);
    let mut model = SpeedModel::new(TrainingMode::Synchronous, profile.batch_size as f64);
    for (p, w) in [
        (1u32, 1u32),
        (2, 3),
        (4, 4),
        (8, 8),
        (4, 8),
        (8, 4),
        (12, 6),
        (6, 12),
        (10, 10),
        (3, 9),
    ] {
        model.record(p, w, truth.speed(p, w));
    }
    model.refit().expect("10 samples");
    let mut errs = Vec::new();
    for p in (2..=20).step_by(2) {
        for w in (2..=20).step_by(2) {
            let real = truth.speed(p, w);
            errs.push((model.predict(p, w) - real).abs() / real);
        }
    }
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(mean < 0.10, "mean error {mean}");
}

/// Theorem 1 (Fig 10): the even, fewest-servers placement minimizes the
/// per-step transmission time; the worked example's numbers hold.
#[test]
fn theorem1_fig10_example() {
    use optimus::ps::transfer_time;
    let a = [
        TaskCounts { ps: 2, workers: 1 },
        TaskCounts { ps: 0, workers: 2 },
        TaskCounts { ps: 0, workers: 1 },
    ];
    let b = [
        TaskCounts { ps: 1, workers: 1 },
        TaskCounts { ps: 1, workers: 1 },
        TaskCounts { ps: 0, workers: 2 },
    ];
    let c = [
        TaskCounts { ps: 1, workers: 2 },
        TaskCounts { ps: 1, workers: 2 },
    ];
    assert_eq!(transfer_time(&a, 1.0, 1.0, 1.0), 3.0);
    assert_eq!(transfer_time(&b, 1.0, 1.0, 1.0), 3.0);
    assert_eq!(transfer_time(&c, 1.0, 1.0, 1.0), 2.0);
}

/// Table 3: PAA vs MXNet on ResNet-50 across 10 PS.
#[test]
fn table3_claims() {
    let blocks = ModelKind::ResNet50.profile().parameter_blocks();
    assert_eq!(blocks.len(), 157);
    let paa = PsAssignment::paa(&blocks, 10).stats();
    let mxnet = PsAssignment::mxnet_default(&blocks, 10, 42).stats();
    assert_eq!(
        paa.total_requests, 157,
        "PAA never slices below-average blocks"
    );
    assert_eq!(mxnet.total_requests, 247, "147 small + 10 sliced × 10");
    assert!(paa.size_difference <= 200_000, "paper: 0.1M");
    assert!(
        mxnet.size_difference >= 4 * paa.size_difference,
        "paper: 3.6M vs 0.1M"
    );
    assert!(paa.request_difference <= 3, "paper: 1");
    assert!(mxnet.request_difference > paa.request_difference);
}

/// Fig 20/21: PAA is at least as fast as MXNet's distribution for every
/// model, and strictly faster where the imbalance is material.
#[test]
fn fig20_fig21_paa_speedups() {
    let mut any_material = false;
    for kind in ModelKind::ALL {
        let profile = kind.profile();
        let blocks = profile.parameter_blocks();
        let model = PsJobModel::new(profile, TrainingMode::Synchronous);
        let mut env = EnvFactors {
            imbalance: PsAssignment::mxnet_default(&blocks, 10, 42)
                .stats()
                .imbalance_factor,
            ..EnvFactors::default()
        };
        let mxnet_speed = model.speed_with(10, 10, &env);
        env.imbalance = PsAssignment::paa(&blocks, 10).stats().imbalance_factor;
        let paa_speed = model.speed_with(10, 10, &env);
        assert!(
            paa_speed >= mxnet_speed * 0.999,
            "{}: paa {paa_speed} vs mxnet {mxnet_speed}",
            profile.name
        );
        if paa_speed > mxnet_speed * 1.10 {
            any_material = true;
        }
    }
    assert!(
        any_material,
        "at least one model gains ≥ 10 % (paper: up to 29 %)"
    );
}

/// Fig 12: one scheduling decision for 1000 jobs on 4000 nodes stays
/// well under the paper's 5-second budget.
#[test]
fn fig12_scheduling_time_budget() {
    use optimus::core::JobView;
    let profile = ModelKind::Seq2Seq.profile();
    let truth = PsJobModel::new(profile, TrainingMode::Synchronous);
    let mut speed = SpeedModel::new(TrainingMode::Synchronous, profile.batch_size as f64);
    for (p, w) in [(1, 1), (2, 2), (4, 4), (8, 8), (4, 8)] {
        speed.record(p, w, truth.speed(p, w));
    }
    speed.refit().expect("profiled");
    let jobs: Vec<JobView> = (0..1_000)
        .map(|i| JobView {
            id: JobId(i),
            worker_profile: optimus::workload::job::default_container(),
            ps_profile: optimus::workload::job::default_container(),
            remaining_work: 1_000.0 + (i % 97) as f64 * 650.0,
            speed: speed.clone(),
            progress: 0.5,
            requested_units: 8,
        })
        .collect();
    let cluster = Cluster::homogeneous(4_000, ResourceVec::new(32.0, 4.0, 128.0, 10.0));
    let scheduler = OptimusScheduler::build();
    let start = std::time::Instant::now();
    let schedule = scheduler.schedule(&jobs, &cluster);
    let elapsed = start.elapsed().as_secs_f64();
    assert!(schedule.total_tasks() > 1_000);
    // Debug builds are ~20× slower than release; the release budget is
    // 5 s, so allow generous headroom here.
    assert!(elapsed < 60.0, "scheduling took {elapsed}s");
}

/// §2.1/Fig 5: every model's loss curve is normalized, monotone, and
/// converges under every owner threshold the workload generator draws.
#[test]
fn loss_curves_well_formed_for_all_thresholds() {
    for kind in ModelKind::ALL {
        let curve = &kind.profile().curve;
        assert!((curve.loss_at_epoch(0.0) - 1.0).abs() < 1e-9);
        for threshold in [0.01, 0.02, 0.03, 0.05] {
            let epochs = curve
                .epochs_to_converge(threshold, 3)
                .unwrap_or_else(|| panic!("{} must converge at {threshold}", kind.name()));
            assert!(epochs >= 3, "{}: {epochs} epochs", kind.name());
            assert!(epochs < 500, "{}: {epochs} epochs", kind.name());
        }
    }
}
