//! Run-ledger integration tests: identical configurations must produce
//! byte-identical (hash-identical) ledgers, and two runs that differ
//! only by an injected server failure must be triaged by
//! [`optimus::ledger::diff_runs`] to the exact first divergent line —
//! the same line a direct comparison of the event logs finds.

use optimus::ledger::{self, LoadedRun, EVENTS_ARTIFACT};
use optimus::prelude::*;
use std::path::{Path, PathBuf};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("optimus-ledger-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One small telemetered run, written as a ledger to `dir` and loaded
/// back (which re-verifies every artifact hash).
fn run_ledgered(dir: &Path, failure: Option<(f64, ServerId)>) -> LoadedRun {
    let jobs = WorkloadGenerator::new(ArrivalProcess::paper_default(4), 7)
        .with_target_job_seconds(Some(1_800.0))
        .generate();
    let tel = Telemetry::enabled();
    let cfg = SimConfig {
        interval_s: 120.0,
        seed: 7,
        assignment: AssignmentPolicy::Paa,
        record_events: true,
        telemetry: tel.clone(),
        server_failures: failure.into_iter().collect(),
        flight: Some(FlightConfig::default()),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(
        Cluster::paper_testbed(),
        jobs,
        Box::new(OptimusScheduler::build_with_telemetry(tel.clone())),
        cfg,
    );
    let report = sim.run();
    ledger::sim_run_ledger(&report, &tel, "ledger-test", 7, serde_json::Value::Null)
        .write(dir)
        .expect("ledger writes");
    ledger::load_run(dir).expect("ledger loads back")
}

#[test]
fn identical_configs_produce_identical_ledgers() {
    let (dir_a, dir_b) = (scratch_dir("same-a"), scratch_dir("same-b"));
    let a = run_ledgered(&dir_a, None);
    let b = run_ledgered(&dir_b, None);

    for rec in &a.manifest.artifacts {
        let other = b.manifest.artifact(&rec.name).expect("artifact in both");
        assert_eq!(rec.hash, other.hash, "{} hashes differ", rec.name);
    }
    let diff = ledger::diff_runs(&a, &b);
    assert!(diff.identical, "self-diff must be empty: {diff:?}");
    assert_eq!(diff.matching.len(), 5);
    assert!(diff.divergence.is_none());

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn injected_failure_is_localized_to_the_first_divergent_line() {
    let (dir_clean, dir_failed) = (scratch_dir("clean"), scratch_dir("failed"));
    let clean = run_ledgered(&dir_clean, None);
    let failed = run_ledgered(&dir_failed, Some((500.0, ServerId(0))));

    let diff = ledger::diff_runs(&clean, &failed);
    assert!(!diff.identical, "a server failure must change the run");
    let d = diff.divergence.as_ref().expect("divergence localized");
    assert_eq!(d.artifact, EVENTS_ARTIFACT, "event log triaged first");

    // Cross-check against a direct line-by-line comparison of the two
    // event logs: diff_runs must point at the very same line.
    let log_a: Vec<&str> = clean.artifacts[EVENTS_ARTIFACT].lines().collect();
    let log_b: Vec<&str> = failed.artifacts[EVENTS_ARTIFACT].lines().collect();
    let first_diff = (0..log_a.len().max(log_b.len()))
        .find(|&i| log_a.get(i) != log_b.get(i))
        .expect("logs differ");
    assert_eq!(d.line, first_diff + 1, "1-based first divergent line");

    // The divergent event decodes: the failure fires at t = 500 s, so
    // nothing before that can differ and the round must resolve.
    let t = d.t.expect("divergent event carries a time");
    assert!(t >= 500.0, "divergence at t = {t}, before the failure");
    assert!(d.round.is_some(), "round resolved from the trace");
    assert!(!d.context_a.is_empty() && !d.context_b.is_empty());
    assert_ne!(d.kind_a, "", "kind decoded on side A");

    let _ = std::fs::remove_dir_all(&dir_clean);
    let _ = std::fs::remove_dir_all(&dir_failed);
}
