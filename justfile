# Project task runner. Install `just`, or read the recipes and run the
# commands directly — each one is a plain cargo invocation.

# Build the whole workspace in release mode.
build:
    cargo build --workspace --release

# Run every test in the workspace.
test:
    cargo test --workspace

# Lint: clippy with warnings denied, plus formatting check.
lint:
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --check

# Run the Fig-12 scheduler scalability benchmark.
bench:
    cargo bench --bench scheduler_scalability

# Time one scheduling decision per scalability point and append the
# result to the committed trajectory file (compare entries across PRs).
bench-sched:
    cargo run --release -p optimus-bench --bin bench_sched -- --out BENCH_sched.json

# Prove the optimized allocator/placer byte-identical to the naive
# reference implementations (property-based, both priority factors).
equivalence:
    cargo test --release -p optimus-core --test equivalence

# Everything CI would run: lint + build + tests, the optimized-vs-
# reference equivalence proptest, and a 1-sample bench smoke run (keeps
# the timing harness compiling and executable without recording noise).
ci: lint build test equivalence
    cargo run --release -p optimus-bench --bin bench_sched -- --samples 1
