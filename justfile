# Project task runner. Install `just`, or read the recipes and run the
# commands directly — each one is a plain cargo invocation.

# Build the whole workspace in release mode.
build:
    cargo build --workspace --release

# Run every test in the workspace.
test:
    cargo test --workspace

# Lint: clippy with warnings denied, plus formatting check.
lint:
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --check

# Run the Fig-12 scheduler scalability benchmark.
bench:
    cargo bench --bench scheduler_scalability

# Time one scheduling decision per scalability point and append the
# result to the committed trajectory file (compare entries across PRs).
bench-sched:
    cargo run --release -p optimus-bench --bin bench_sched -- --out BENCH_sched.json

# Time one interval's convergence refits (reference vs fast path) per
# grid point and append the result to the committed trajectory file.
bench-fit:
    cargo run --release -p optimus-bench --bin bench_fit -- --out BENCH_fit.json

# Allocator smoke: one steady-state bench sample per scalability point,
# cross-checked against the naive reference scheduler (non-zero exit on
# any divergent allocation or placement), plus the zero-allocation
# steady-state-round proof.
bench-alloc:
    cargo run --release -p optimus-bench --bin bench_sched -- --samples 1 --verify
    cargo test --release -p optimus-core --test zero_alloc

# Prove the optimized paths byte-identical to the naive reference
# implementations (property-based): allocator/placer, the incremental
# warm-started convergence fitter, the batched SoA fit engine, and the
# simulator. The simulator suite runs four ways — under the
# discrete-event engine (the default), forced to the legacy tick loop,
# with the batched refit engine disabled, and with delta rounds
# disabled (every round re-derived from scratch) — so every engine
# default keeps passing the same byte-identity proofs, plus the
# event-calendar determinism proptests.
equivalence:
    cargo test --release -p optimus-core --test equivalence
    cargo test --release -p optimus-fitting --test equivalence
    cargo test --release -p optimus-fitting --test batch_equivalence
    cargo test --release -p optimus-simulator --test equivalence
    OPTIMUS_EVENT_ENGINE=0 cargo test --release -p optimus-simulator --test equivalence
    OPTIMUS_BATCHED_FIT=0 cargo test --release -p optimus-simulator --test equivalence
    OPTIMUS_DELTA_ROUNDS=0 cargo test --release -p optimus-simulator --test equivalence
    cargo test --release -p optimus-simulator --test event_determinism

# Ledger smoke: two identical small runs must produce byte-identical
# artifacts — `optimus-trace diff` exits non-zero if they diverge —
# and a third run under the legacy tick engine must hash identically
# to the event-engine runs on every decision artifact (the cross-engine
# determinism contract, DESIGN §11). `trace.jsonl` is excluded there:
# it carries each engine's own accounting counters (events/waves vs
# ticks skipped/batched), which differ by construction. A fourth run
# with the batched refit engine disabled must match the default run on
# EVERY artifact, trace included — the batched fitter's contract is
# bit-identical models *and* telemetry (DESIGN §12), so nothing is
# ignored in that diff. A fifth run with delta rounds disabled must
# match on every decision artifact (events/schedule/jct — the DESIGN
# §13 contract); `trace.jsonl` and `flight.jsonl` are excluded there
# because the delta path legitimately emits different *telemetry*:
# replayed placements skip per-job Placement events, and per-round
# counter deltas differ when work is reused instead of re-derived.
# `provenance.jsonl` is excluded there too: why-records narrate the
# delta path taken (replay/derive vs full), which differs between the
# modes by definition even though the decisions are identical.
ledger:
    rm -rf target/ledger-smoke
    cargo run --release --bin optimus-sim -- run --jobs 3 --seed 11 --interval 300 --ledger target/ledger-smoke/a
    cargo run --release --bin optimus-sim -- run --jobs 3 --seed 11 --interval 300 --ledger target/ledger-smoke/b
    OPTIMUS_EVENT_ENGINE=0 cargo run --release --bin optimus-sim -- run --jobs 3 --seed 11 --interval 300 --ledger target/ledger-smoke/tick
    OPTIMUS_BATCHED_FIT=0 cargo run --release --bin optimus-sim -- run --jobs 3 --seed 11 --interval 300 --ledger target/ledger-smoke/scalar-fit
    OPTIMUS_DELTA_ROUNDS=0 cargo run --release --bin optimus-sim -- run --jobs 3 --seed 11 --interval 300 --ledger target/ledger-smoke/full-rounds
    cargo run --release --bin optimus-trace -- diff target/ledger-smoke/a target/ledger-smoke/b
    cargo run --release --bin optimus-trace -- diff --ignore trace.jsonl target/ledger-smoke/a target/ledger-smoke/tick
    cargo run --release --bin optimus-trace -- diff target/ledger-smoke/a target/ledger-smoke/scalar-fit
    cargo run --release --bin optimus-trace -- diff --ignore trace.jsonl --ignore flight.jsonl --ignore provenance.jsonl target/ledger-smoke/a target/ledger-smoke/full-rounds

# Whole-simulation throughput: simulated-seconds per wall-second and
# events per wall-second across the job grid, with a bit-identical
# per-job JCT cross-check between samples (a nondeterministic engine
# cannot record timings). Appends to the committed trajectory file.
bench-sim:
    cargo run --release -p optimus-bench --bin bench_sim -- --out BENCH_sim.json

# Flight-recorder smoke: write a small ledgered run and render it as a
# per-job Gantt chart plus utilization/fragmentation/queue timelines.
timeline:
    rm -rf target/timeline-demo
    cargo run --release --bin optimus-sim -- run --jobs 4 --seed 11 --interval 300 --ledger target/timeline-demo
    cargo run --release --bin optimus-trace -- timeline target/timeline-demo

# Decision-provenance smoke: record a small ledgered run and explain
# one job's decisions from its provenance.jsonl — the round-by-round
# history, one full round story, and the run-wide summary. Exercises
# the whole why-record pipeline (record → ledger artifact → explainer).
why:
    rm -rf target/why-demo
    cargo run --release --bin optimus-sim -- run --jobs 4 --seed 11 --interval 300 --ledger target/why-demo
    cargo run --release --bin optimus-trace -- why 1 target/why-demo
    cargo run --release --bin optimus-trace -- why 1 target/why-demo --round 3
    cargo run --release --bin optimus-trace -- why target/why-demo --summary

# Regression watchdog: fail if the newest committed bench entry is
# slower than the best prior entry beyond the tolerance.
check-bench:
    cargo run --release --bin optimus-trace -- check-bench

# Everything CI would run: lint + build + tests, the optimized-vs-
# reference equivalence proptests (in every engine mode, including
# delta rounds off), 1-sample bench smoke runs (keeps the timing
# harnesses compiling and executable without recording noise;
# bench-alloc also cross-checks decisions against the reference across
# the standard points *and* the steady-state churn points, where
# --verify additionally fails on any delta-path fallback to a full
# re-derivation; bench_fit smokes the at-scale 5000-job grid point,
# which includes its own reference-vs-scalar-vs-batched cross-check;
# bench_sim smokes the at-scale 100-job grid point, which includes its
# own tick-vs-event cross-check), the run-ledger determinism smoke
# (including the cross-engine and delta-off diffs), the
# flight-recorder timeline smoke, the decision-provenance why smoke,
# and the bench regression watchdog.
ci: lint build test equivalence bench-alloc ledger timeline why check-bench
    cargo run --release -p optimus-bench --bin bench_fit -- --samples 1 --points 5000
    cargo run --release -p optimus-bench --bin bench_sim -- --samples 1 --points 100
