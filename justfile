# Project task runner. Install `just`, or read the recipes and run the
# commands directly — each one is a plain cargo invocation.

# Build the whole workspace in release mode.
build:
    cargo build --workspace --release

# Run every test in the workspace.
test:
    cargo test --workspace

# Lint: clippy with warnings denied, plus formatting check.
lint:
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --check

# Run the Fig-12 scheduler scalability benchmark.
bench:
    cargo bench --bench scheduler_scalability

# Everything CI would run.
ci: lint build test
