//! Optimus on the mini control plane (§5.5): the scheduler runs "as a
//! pod", polls the API server, binds task pods to nodes, survives a
//! node failure, and resumes cleanly after its own restart thanks to
//! the etcd-style checkpoint.
//!
//! Run with: `cargo run --release --example orchestrator_demo`

use optimus::core::JobView;
use optimus::orchestrator::{ApiServer, Kubelet, NodeRecord, SchedulerPod};
use optimus::prelude::*;

fn job_view(id: u64, remaining: f64) -> JobView {
    let profile = ModelKind::Seq2Seq.profile();
    let truth = PsJobModel::new(profile, TrainingMode::Synchronous);
    let mut speed = SpeedModel::new(TrainingMode::Synchronous, profile.batch_size as f64);
    for (p, w) in [(1, 1), (2, 2), (4, 4), (8, 8), (4, 8)] {
        speed.record(p, w, truth.speed(p, w));
    }
    speed.refit().expect("profiled");
    JobView {
        id: JobId(id),
        worker_profile: optimus::workload::job::default_container(),
        ps_profile: optimus::workload::job::default_container(),
        remaining_work: remaining,
        speed,
        progress: 0.3,
        requested_units: 4,
    }
}

fn main() {
    // Control plane with the testbed's 13 nodes and their kubelets.
    let api = ApiServer::new();
    let cluster = Cluster::paper_testbed();
    let mut kubelets = Vec::new();
    for server in cluster.servers() {
        let name = format!("node-{:02}", server.id().0);
        api.create_node(&NodeRecord::ready(&name, server.capacity()))
            .expect("fresh node");
        kubelets.push(Kubelet::new(name, api.clone()));
    }

    // The scheduler pod makes its first round.
    let mut sched = SchedulerPod::launch(api.clone(), Box::new(OptimusScheduler::build()));
    let jobs = vec![job_view(0, 20_000.0), job_view(1, 4_000.0)];
    let out = sched.reconcile(&jobs).expect("healthy cluster");
    println!("round 1: {out:?}");
    for k in &kubelets {
        k.step().expect("kubelet reconciles");
    }
    println!(
        "pods running: {}",
        api.list_pods()
            .iter()
            .filter(|p| p.phase == optimus::orchestrator::PodPhase::Running)
            .count()
    );

    // A node dies; its kubelet fails the pods it hosted.
    let victim = kubelets
        .iter_mut()
        .find(|k| {
            api.list_pods()
                .iter()
                .any(|p| p.node.as_deref() == Some(k.node()))
        })
        .expect("some node hosts pods");
    println!("\nkilling {} ...", victim.node());
    victim.kill().expect("node exists");
    victim.step().expect("fails its pods");

    // Next round reschedules the affected job onto healthy nodes.
    let out = sched.reconcile(&jobs).expect("12 nodes remain");
    println!("round 2 (after node failure): {out:?}");
    for k in &kubelets {
        k.step().expect("kubelet reconciles");
    }
    assert!(
        api.list_pods()
            .iter()
            .all(|p| p.phase == optimus::orchestrator::PodPhase::Running),
        "all pods rescheduled onto healthy nodes"
    );

    // The scheduler itself "crashes" — Kubernetes restarts it, and the
    // checkpoint prevents any churn.
    drop(sched);
    let mut sched2 = SchedulerPod::launch(api.clone(), Box::new(OptimusScheduler::build()));
    let out = sched2.reconcile(&jobs).expect("cluster healthy");
    println!("\nround 3 (restarted scheduler): {out:?}");
    assert_eq!(out.pods_created, 0, "checkpoint prevented churn");
    assert_eq!(out.jobs_unchanged, 2);
    println!("\nscheduler restart caused zero pod churn — §5.5 fault tolerance works");
}
