//! The paper's §6.2 headline experiment: 9 jobs on the 13-server
//! testbed, scheduled by Optimus, the DRF fairness scheduler, and
//! Tetris, averaged over three repetitions.
//!
//! Run with: `cargo run --release --example testbed_experiment`

use optimus::prelude::*;

fn main() {
    let seeds = [17u64, 23, 31];
    println!(
        "§6.2 testbed experiment: 9 jobs × {} repetitions\n",
        seeds.len()
    );
    println!(
        "{:<10} {:>12} {:>14} {:>12}",
        "scheduler", "avg JCT (s)", "makespan (s)", "overhead %"
    );

    let mut baseline_jct = None;
    for (name, build, assignment) in [
        (
            "Optimus",
            OptimusScheduler::build as fn() -> CompositeScheduler,
            AssignmentPolicy::Paa,
        ),
        ("DRF", DrfScheduler::build, AssignmentPolicy::MxnetDefault),
        (
            "Tetris",
            TetrisScheduler::build,
            AssignmentPolicy::MxnetDefault,
        ),
    ] {
        let mut jcts = Vec::new();
        let mut makespans = Vec::new();
        let mut overheads = Vec::new();
        for &seed in &seeds {
            let jobs = WorkloadGenerator::new(ArrivalProcess::paper_default(9), seed)
                .with_target_job_seconds(Some(7_200.0))
                .generate();
            let cfg = SimConfig {
                assignment,
                seed,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(Cluster::paper_testbed(), jobs, Box::new(build()), cfg);
            let report = sim.run();
            assert_eq!(report.unfinished_jobs, 0);
            jcts.push(report.avg_jct());
            makespans.push(report.makespan);
            overheads.push(report.scaling_overhead_fraction());
        }
        let jct = jcts.iter().sum::<f64>() / jcts.len() as f64;
        let makespan = makespans.iter().sum::<f64>() / makespans.len() as f64;
        let overhead = overheads.iter().sum::<f64>() / overheads.len() as f64;
        println!(
            "{name:<10} {jct:>12.0} {makespan:>14.0} {:>12.2}",
            overhead * 100.0
        );
        if name == "Optimus" {
            baseline_jct = Some((jct, makespan));
        } else if let Some((opt_jct, opt_mk)) = baseline_jct {
            println!(
                "{:<10} {:>12} {:>14}",
                "",
                format!("(×{:.2})", jct / opt_jct),
                format!("(×{:.2})", makespan / opt_mk)
            );
        }
    }
    println!("\npaper: DRF ×2.39 JCT / ×1.63 makespan; Tetris ×1.74 / ×1.20 vs Optimus");
}
