//! Workload traces: generate a workload, save it as JSON, reload it,
//! and replay the identical experiment — the reproducibility workflow
//! behind every number in EXPERIMENTS.md (also exposed by the
//! `optimus-sim` CLI via `--trace-out` / `--trace-in`).
//!
//! Run with: `cargo run --release --example trace_replay`

use optimus::prelude::*;
use optimus::workload::trace::WorkloadTrace;

fn main() {
    // 1. Generate and save.
    let jobs = WorkloadGenerator::new(ArrivalProcess::paper_default(5), 99)
        .with_target_job_seconds(Some(2_400.0))
        .generate();
    let trace = WorkloadTrace::new("trace_replay example, seed 99", jobs.clone());
    let path = std::env::temp_dir().join("optimus_trace_replay.json");
    std::fs::write(&path, trace.to_json()).expect("temp dir is writable");
    println!("saved {} jobs to {}", trace.jobs.len(), path.display());

    // 2. Reload and verify byte-exact round trip.
    let json = std::fs::read_to_string(&path).expect("just wrote it");
    let reloaded = WorkloadTrace::from_json(&json).expect("valid trace");
    assert_eq!(reloaded.jobs, jobs, "lossless float round trip");

    // 3. Replay: the simulation of the reloaded trace is identical to
    //    the simulation of the original workload.
    let run = |jobs: Vec<JobSpec>| {
        let cfg = SimConfig {
            seed: 99,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(
            Cluster::paper_testbed(),
            jobs,
            Box::new(OptimusScheduler::build()),
            cfg,
        );
        sim.run()
    };
    let original = run(jobs);
    let replayed = run(reloaded.jobs);
    assert_eq!(original.jct, replayed.jct);
    assert_eq!(original.makespan, replayed.makespan);
    println!(
        "replay identical: avg JCT {:.0} s, makespan {:.0} s across {} jobs",
        replayed.avg_jct(),
        replayed.makespan,
        replayed.jct.len()
    );
    std::fs::remove_file(&path).ok();
}
