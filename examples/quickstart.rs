//! Quickstart: simulate a handful of DL training jobs on the paper's
//! 13-server testbed under the Optimus scheduler.
//!
//! Run with: `cargo run --release --example quickstart`

use optimus::prelude::*;

fn main() {
    // 1. A workload: four jobs drawn from the Table-1 model zoo,
    //    arriving over the first 20 minutes (seeded → reproducible).
    let jobs = WorkloadGenerator::new(
        ArrivalProcess::UniformRandom {
            count: 4,
            horizon_s: 1_200.0,
        },
        42,
    )
    .generate();

    println!("Submitting {} jobs:", jobs.len());
    for job in &jobs {
        println!(
            "  {}  {:<12} {:<5} δ={:.1}%  arrives t={:>5.0}s  dataset×{:.3}",
            job.id,
            job.model.name(),
            job.mode.label(),
            job.convergence_threshold * 100.0,
            job.submit_time,
            job.dataset_scale,
        );
    }

    // 2. The cluster and the scheduler.
    let cluster = Cluster::paper_testbed();
    let scheduler = Box::new(OptimusScheduler::build());

    // 3. Simulate.
    let mut sim = Simulation::new(cluster, jobs, scheduler, SimConfig::default());
    let report = sim.run();

    // 4. Results.
    println!("\nScheduler: {}", report.scheduler);
    let mut jct = report.jct.clone();
    jct.sort_by_key(|&(id, _)| id);
    for (id, t) in &jct {
        println!("  {id}  completed in {:>6.0} s ({:.1} h)", t, t / 3_600.0);
    }
    println!(
        "\naverage JCT {:.0} s, makespan {:.0} s, scaling overhead {:.2} % of makespan",
        report.avg_jct(),
        report.makespan,
        100.0 * report.scaling_overhead_fraction()
    );
    assert_eq!(report.unfinished_jobs, 0, "every job should converge");
}
