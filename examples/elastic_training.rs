//! The life of one elastic training job: profiling runs, online model
//! fitting, and the (p, w) trajectory Optimus steers it through as a
//! competing job arrives and leaves.
//!
//! Run with: `cargo run --release --example elastic_training`

use optimus::prelude::*;
use optimus::workload::JobSpec;

fn main() {
    // One long ResNet-50 job, plus a short job arriving mid-flight that
    // forces Optimus to rebalance (checkpoint + restart, §5.4).
    let long_job = JobSpec::new(
        JobId(0),
        ModelKind::ResNet50,
        TrainingMode::Synchronous,
        0.02,
    )
    .at(0.0)
    .scaled(0.002);
    let short_job = JobSpec::new(
        JobId(1),
        ModelKind::CnnRand,
        TrainingMode::Asynchronous,
        0.03,
    )
    .at(3_000.0);

    // Show the §3.2 profiling + fitting step explicitly.
    let profile = ModelKind::ResNet50.profile();
    let truth = PsJobModel::new(profile, TrainingMode::Synchronous);
    let mut speed = SpeedModel::new(TrainingMode::Synchronous, profile.batch_size as f64);
    println!("profiling runs (5 sample configurations, §3.2):");
    for (p, w) in [(1u32, 1u32), (2, 2), (4, 4), (8, 8), (4, 8)] {
        let s = truth.speed(p, w);
        println!("  (p={p:>2}, w={w:>2}) → {s:.4} steps/s");
        speed.record(p, w, s);
    }
    speed.refit().expect("5 samples fit the sync model");
    println!("fitted θ = {:?}", speed.coefficients());
    println!(
        "prediction check at (10, 10): fitted {:.4} vs true {:.4} steps/s\n",
        speed.predict(10, 10),
        truth.speed(10, 10)
    );

    // Run the two-job scenario and report the long job's trajectory.
    let cfg = SimConfig {
        sample_every_s: 300.0,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(
        Cluster::paper_testbed(),
        vec![long_job, short_job],
        Box::new(OptimusScheduler::build()),
        cfg,
    );
    let report = sim.run();

    println!("timeline (tasks allocated across the cluster):");
    for pt in report.timeline.iter().step_by(2) {
        println!(
            "  t={:>6.0}s  running tasks {:>3}  active jobs {}",
            pt.t, pt.running_tasks, pt.active_jobs
        );
    }

    let long = &sim.jobs()[0];
    println!(
        "\nlong job: {} scale events, {:.0} s total checkpoint overhead,",
        long.scale_events, long.overhead_total_s
    );
    println!(
        "          {} data chunks moved by §5.1 rebalancing, finished at t={:.0}s",
        long.chunks_moved,
        long.finish_time.expect("finished")
    );
    let short = &sim.jobs()[1];
    println!(
        "short job: finished at t={:.0}s (JCT {:.0}s)",
        short.finish_time.expect("finished"),
        short.finish_time.expect("finished") - short.spec.submit_time
    );
    assert_eq!(report.unfinished_jobs, 0);
}
