//! The simulator ↔ control-plane bridge.
//!
//! The discrete-time simulator normally invokes a scheduler as a plain
//! function. This module instead routes every scheduling round through
//! the §5.5 deployment: node records are synced from the simulated
//! cluster, the [`SchedulerPod`] reconciles (creating, binding, and
//! deleting pods in the etcd-style store), kubelets start the bound
//! pods, and the resulting pod set is read back as the round's
//! [`Schedule`]. The simulation's physics are unchanged — what changes
//! is that every decision now flows through the same control-plane
//! machinery a real deployment would use, pod churn and all.
//!
//! [`OrchestratedScheduler`] implements the ordinary
//! [`optimus_core::Scheduler`] trait, so it drops into
//! [`optimus_simulator::Simulation`] unchanged.

use optimus_cluster::{Cluster, ServerId};
use optimus_core::{Allocation, JobView, Schedule, Scheduler};
use optimus_orchestrator::{ApiServer, Kubelet, NodeRecord, PodPhase, SchedulerPod, TaskRole};
use optimus_ps::TaskCounts;
use std::cell::RefCell;
use std::collections::BTreeMap;

/// A scheduler that executes its decisions through the mini control
/// plane.
pub struct OrchestratedScheduler {
    api: ApiServer,
    pod: RefCell<SchedulerPod>,
    kubelets: RefCell<Vec<Kubelet>>,
    name: String,
}

impl OrchestratedScheduler {
    /// Wraps an inner scheduler in the control plane. Nodes are
    /// registered lazily on the first round (their capacities follow the
    /// cluster the simulator passes in).
    pub fn new(inner: Box<dyn Scheduler>) -> Self {
        let api = ApiServer::new();
        let name = format!("{} (orchestrated)", inner.name());
        let pod = SchedulerPod::launch(api.clone(), inner);
        OrchestratedScheduler {
            api,
            pod: RefCell::new(pod),
            kubelets: RefCell::new(Vec::new()),
            name,
        }
    }

    /// Access to the control plane (inspection in tests).
    pub fn api(&self) -> &ApiServer {
        &self.api
    }

    fn node_name(sid: ServerId) -> String {
        format!("node-{:04}", sid.0)
    }

    /// Creates or updates node records to mirror the simulated cluster's
    /// *free* capacity (the simulator already folds failures and
    /// background reservations into allocations).
    fn sync_nodes(&self, cluster: &Cluster) {
        let mut kubelets = self.kubelets.borrow_mut();
        for server in cluster.servers() {
            let name = Self::node_name(server.id());
            let record = NodeRecord::ready(&name, server.available());
            if self.api.get_node(&name).is_ok() {
                self.api.update_node(&record).expect("node exists");
            } else {
                self.api.create_node(&record).expect("fresh node");
                kubelets.push(Kubelet::new(name, self.api.clone()));
            }
        }
    }
}

impl Scheduler for OrchestratedScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn schedule(&self, jobs: &[JobView], cluster: &Cluster) -> Schedule {
        self.sync_nodes(cluster);
        self.pod
            .borrow_mut()
            .reconcile(jobs)
            .expect("control plane is healthy");
        // Kubelets start what was bound.
        for kubelet in self.kubelets.borrow().iter() {
            kubelet.step().expect("kubelet reconciles");
        }

        // Read the cluster state back into a Schedule.
        let mut per_job: BTreeMap<u64, BTreeMap<usize, TaskCounts>> = BTreeMap::new();
        for pod in self.api.list_pods() {
            if !matches!(pod.phase, PodPhase::Bound | PodPhase::Running) {
                continue;
            }
            let Some(node) = pod.node.as_deref() else {
                continue;
            };
            let Some(idx) = node
                .strip_prefix("node-")
                .and_then(|s| s.parse::<usize>().ok())
            else {
                continue;
            };
            let entry = per_job
                .entry(pod.spec.job.0)
                .or_default()
                .entry(idx)
                .or_default();
            match pod.spec.role {
                TaskRole::ParameterServer => entry.ps += 1,
                TaskRole::Worker => entry.workers += 1,
            }
        }

        let mut schedule = Schedule::default();
        for view in jobs {
            let counts = per_job.remove(&view.id.0).unwrap_or_default();
            let placement: Vec<(ServerId, TaskCounts)> = counts
                .into_iter()
                .map(|(idx, c)| (ServerId(idx), c))
                .collect();
            let ps: u32 = placement.iter().map(|(_, c)| c.ps).sum();
            let workers: u32 = placement.iter().map(|(_, c)| c.workers).sum();
            schedule.push_allocation(Allocation {
                job: view.id,
                ps,
                workers,
            });
            if ps > 0 && workers > 0 {
                schedule.insert_placement(view.id, placement);
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn quick_jobs(n: usize, seed: u64) -> Vec<JobSpec> {
        WorkloadGenerator::new(
            ArrivalProcess::UniformRandom {
                count: n,
                horizon_s: 1_500.0,
            },
            seed,
        )
        .with_target_job_seconds(Some(1_800.0))
        .generate()
    }

    fn config() -> SimConfig {
        SimConfig {
            interval_s: 300.0,
            max_time_s: 120_000.0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn orchestrated_simulation_completes() {
        let scheduler = OrchestratedScheduler::new(Box::new(OptimusScheduler::build()));
        let mut sim = Simulation::new(
            Cluster::paper_testbed(),
            quick_jobs(3, 41),
            Box::new(scheduler),
            config(),
        );
        let report = sim.run();
        assert_eq!(report.unfinished_jobs, 0, "{report:?}");
    }

    #[test]
    fn orchestrated_matches_direct_scheduling() {
        // Routing through the control plane must not change a single
        // decision: identical JCTs, makespan, and scale events.
        let direct = {
            let mut sim = Simulation::new(
                Cluster::paper_testbed(),
                quick_jobs(4, 43),
                Box::new(OptimusScheduler::build()),
                config(),
            );
            sim.run()
        };
        let orchestrated = {
            let scheduler = OrchestratedScheduler::new(Box::new(OptimusScheduler::build()));
            let mut sim = Simulation::new(
                Cluster::paper_testbed(),
                quick_jobs(4, 43),
                Box::new(scheduler),
                config(),
            );
            sim.run()
        };
        assert_eq!(direct.jct, orchestrated.jct);
        assert_eq!(direct.makespan, orchestrated.makespan);
        assert_eq!(direct.scale_events, orchestrated.scale_events);
    }

    #[test]
    fn control_plane_pods_track_running_jobs() {
        let scheduler = OrchestratedScheduler::new(Box::new(OptimusScheduler::build()));
        let api = scheduler.api().clone();
        let mut sim = Simulation::new(
            Cluster::paper_testbed(),
            quick_jobs(2, 47),
            Box::new(scheduler),
            config(),
        );
        let report = sim.run();
        assert_eq!(report.unfinished_jobs, 0);
        // Jobs that finish after the final scheduling round leave pods
        // behind until the next reconcile — run one (via a recovered
        // scheduler pod, exercising the checkpoint path) with no active
        // jobs and verify everything is garbage-collected.
        let mut sweeper = optimus_orchestrator::SchedulerPod::launch(
            api.clone(),
            Box::new(OptimusScheduler::build()),
        );
        sweeper.reconcile(&[]).expect("healthy control plane");
        assert!(api.list_pods().is_empty(), "{:?}", api.list_pods());
    }
}
