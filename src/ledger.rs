//! Workspace-level run-ledger helpers: build a simulator run's ledger,
//! load a recorded run directory back (verifying artifact hashes), and
//! localize the **first divergence** between two runs.
//!
//! The artifact layout a sim run writes (see
//! [`optimus_telemetry::ledger`] for the manifest itself):
//!
//! * `events.jsonl` — the full [`optimus_simulator::EventLog`];
//! * `schedule.jsonl` — only the per-round placement decisions
//!   (`JobScheduled` / `JobPaused` / `ChunksRebalanced`);
//! * `trace.jsonl` — the *canonical* telemetry stream (wall-clock
//!   content stripped, so identical configs produce identical bytes).
//!
//! [`diff_runs`] compares two loaded runs hash-first, then walks the
//! first differing artifact (in the order above — the event log is the
//! most readable place to start triage) to the first unequal line and
//! decodes it into a [`Divergence`]: which simulated time, which round,
//! which job, which event kind on each side, with surrounding context
//! from both runs.

use optimus_simulator::SimReport;
use optimus_telemetry::ledger::{content_hash, RunLedger, RunManifest};
use optimus_telemetry::Telemetry;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Artifact name of the full event log.
pub const EVENTS_ARTIFACT: &str = "events.jsonl";
/// Artifact name of the placement-decision stream.
pub const SCHEDULE_ARTIFACT: &str = "schedule.jsonl";
/// Artifact name of the canonical telemetry trace.
pub const TRACE_ARTIFACT: &str = "trace.jsonl";
/// Artifact name of the per-job JCT decomposition.
pub const JCT_ARTIFACT: &str = "jct.jsonl";
/// Artifact name of the flight-recorder snapshot stream (present only
/// when the run had the recorder on).
pub const FLIGHT_ARTIFACT: &str = "flight.jsonl";
/// Artifact name of the decision-provenance ledger (present only when
/// the run had provenance recording on).
pub const PROVENANCE_ARTIFACT: &str = "provenance.jsonl";

/// Builds the ledger for one completed simulator run: config echo,
/// deterministic artifacts (event log, schedule stream, canonical
/// trace) and the final telemetry summary. The caller picks the output
/// directory via [`RunLedger::write`].
pub fn sim_run_ledger(
    report: &SimReport,
    tel: &Telemetry,
    label: &str,
    seed: u64,
    config: serde_json::Value,
) -> RunLedger {
    let mut ledger = RunLedger::new("sim", label)
        .scheduler(&report.scheduler)
        .seed(seed)
        .threads(optimus_bench::available_threads())
        .config(config);
    if tel.is_enabled() {
        ledger = ledger.summary(tel.summary());
    }
    ledger.add_artifact(
        EVENTS_ARTIFACT,
        with_final_newline(report.events.to_json_lines()),
    );
    ledger.add_artifact(
        SCHEDULE_ARTIFACT,
        with_final_newline(report.events.schedule_stream_json_lines()),
    );
    ledger.add_artifact(TRACE_ARTIFACT, tel.to_canonical_json_lines());
    let jct_lines: String = report
        .breakdown
        .iter()
        .map(|b| {
            let mut line = serde_json::to_string(b).expect("breakdown serializes");
            line.push('\n');
            line
        })
        .collect();
    ledger.add_artifact(JCT_ARTIFACT, jct_lines);
    if let Some(flight) = &report.flight {
        ledger.add_artifact(FLIGHT_ARTIFACT, flight.to_json_lines());
    }
    if tel.provenance_enabled() {
        ledger.add_artifact(PROVENANCE_ARTIFACT, tel.why_json_lines());
    }
    ledger
}

fn with_final_newline(mut s: String) -> String {
    if !s.is_empty() && !s.ends_with('\n') {
        s.push('\n');
    }
    s
}

/// A run directory read back into memory: the manifest plus every
/// artifact body, hash-verified.
#[derive(Debug, Clone)]
pub struct LoadedRun {
    /// The directory the run was loaded from.
    pub dir: PathBuf,
    /// The parsed `manifest.json`.
    pub manifest: RunManifest,
    /// Artifact bodies by name.
    pub artifacts: BTreeMap<String, String>,
}

/// Loads a run directory, verifying that every artifact on disk still
/// matches the hash its manifest recorded (a mismatch means the
/// directory was edited after the run and cannot be trusted for diffs).
pub fn load_run(dir: &Path) -> Result<LoadedRun, String> {
    let manifest = RunManifest::load(dir)?;
    let mut artifacts = BTreeMap::new();
    for record in &manifest.artifacts {
        let path = dir.join(&record.name);
        let body =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let hash = content_hash(&body);
        if hash != record.hash {
            return Err(format!(
                "{}: artifact modified since the run was recorded (manifest {}, on disk {})",
                path.display(),
                record.hash,
                hash
            ));
        }
        artifacts.insert(record.name.clone(), body);
    }
    Ok(LoadedRun {
        dir: dir.to_path_buf(),
        manifest,
        artifacts,
    })
}

/// The first divergent line between two runs, decoded for triage.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Artifact the divergence was found in.
    pub artifact: String,
    /// 1-based line number of the first unequal line.
    pub line: usize,
    /// Simulated time of the divergent event, when decodable.
    pub t: Option<f64>,
    /// Scheduling round the divergence falls in (resolved from run A's
    /// canonical trace), when decodable.
    pub round: Option<u64>,
    /// Job the divergent event concerns on side A, when decodable.
    pub job: Option<u64>,
    /// Event kind at the divergent line in run A (`<end of log>` when A
    /// is the shorter stream).
    pub kind_a: String,
    /// Event kind at the divergent line in run B.
    pub kind_b: String,
    /// Surrounding lines from run A (the divergent line marked `>`).
    pub context_a: Vec<String>,
    /// Surrounding lines from run B.
    pub context_b: Vec<String>,
    /// Decision-trace context around the divergent round from run A's
    /// canonical trace (empty when the round cannot be resolved).
    pub trace_context_a: Vec<String>,
    /// Decision-trace context from run B's canonical trace.
    pub trace_context_b: Vec<String>,
}

/// Outcome of diffing two runs.
#[derive(Debug, Clone)]
pub struct RunDiff {
    /// True when every shared artifact hashes identically and neither
    /// run has artifacts the other lacks.
    pub identical: bool,
    /// Artifacts present in both runs with equal hashes.
    pub matching: Vec<String>,
    /// Artifacts present in both runs with different hashes.
    pub differing: Vec<String>,
    /// Artifacts present in exactly one run, as `(name, which_run)`.
    pub only_in_one: Vec<(String, char)>,
    /// First divergence of the highest-priority differing artifact.
    pub divergence: Option<Divergence>,
}

/// Artifact walk order for divergence triage: placement decisions are
/// scanned via the full event log first (it carries admissions and
/// finishes too), then the schedule stream, then the canonical trace.
const DIFF_PRIORITY: [&str; 6] = [
    EVENTS_ARTIFACT,
    SCHEDULE_ARTIFACT,
    TRACE_ARTIFACT,
    JCT_ARTIFACT,
    FLIGHT_ARTIFACT,
    PROVENANCE_ARTIFACT,
];

/// Lines of context shown on each side of a divergent line.
const CONTEXT: usize = 3;

/// Diffs two loaded runs: hash comparison per artifact, then
/// first-divergence localization on the first differing artifact.
pub fn diff_runs(a: &LoadedRun, b: &LoadedRun) -> RunDiff {
    let mut matching = Vec::new();
    let mut differing = Vec::new();
    let mut only_in_one = Vec::new();
    for rec in &a.manifest.artifacts {
        match b.manifest.artifact(&rec.name) {
            Some(other) if other.hash == rec.hash => matching.push(rec.name.clone()),
            Some(_) => differing.push(rec.name.clone()),
            None => only_in_one.push((rec.name.clone(), 'a')),
        }
    }
    for rec in &b.manifest.artifacts {
        if a.manifest.artifact(&rec.name).is_none() {
            only_in_one.push((rec.name.clone(), 'b'));
        }
    }
    let first = DIFF_PRIORITY
        .iter()
        .find(|name| differing.iter().any(|d| d == *name))
        .copied()
        .or_else(|| differing.first().map(String::as_str));
    let divergence = first.and_then(|name| localize(a, b, name));
    RunDiff {
        identical: differing.is_empty() && only_in_one.is_empty(),
        matching,
        differing,
        only_in_one,
        divergence,
    }
}

/// Finds the first unequal line of one artifact and decodes it.
fn localize(a: &LoadedRun, b: &LoadedRun, artifact: &str) -> Option<Divergence> {
    let body_a = a.artifacts.get(artifact)?;
    let body_b = b.artifacts.get(artifact)?;
    let lines_a: Vec<&str> = body_a.lines().collect();
    let lines_b: Vec<&str> = body_b.lines().collect();
    let idx = (0..lines_a.len().max(lines_b.len())).find(|&i| lines_a.get(i) != lines_b.get(i))?;
    let line_a = lines_a.get(idx).copied();
    let line_b = lines_b.get(idx).copied();
    let parsed_a = line_a.and_then(|l| serde_json::from_str::<serde_json::Value>(l).ok());
    let parsed_b = line_b.and_then(|l| serde_json::from_str::<serde_json::Value>(l).ok());
    let t = parsed_a.as_ref().or(parsed_b.as_ref()).and_then(event_time);
    let job = parsed_a.as_ref().or(parsed_b.as_ref()).and_then(event_job);
    let round = parsed_a
        .as_ref()
        .and_then(event_round)
        .or_else(|| t.and_then(|t| round_at(a, t)));
    Some(Divergence {
        artifact: artifact.to_string(),
        line: idx + 1,
        t,
        round,
        job,
        kind_a: line_a
            .map(describe_line)
            .unwrap_or_else(|| "<end of log>".to_string()),
        kind_b: line_b
            .map(describe_line)
            .unwrap_or_else(|| "<end of log>".to_string()),
        context_a: context(&lines_a, idx),
        context_b: context(&lines_b, idx),
        trace_context_a: round.map(|r| trace_context(a, r)).unwrap_or_default(),
        trace_context_b: round.map(|r| trace_context(b, r)).unwrap_or_default(),
    })
}

/// `±CONTEXT` lines around `idx`, the divergent line prefixed `> `.
fn context(lines: &[&str], idx: usize) -> Vec<String> {
    let lo = idx.saturating_sub(CONTEXT);
    let hi = (idx + CONTEXT + 1).min(lines.len());
    (lo..hi)
        .map(|i| {
            let marker = if i == idx { ">" } else { " " };
            format!("{marker} {:>5}  {}", i + 1, lines[i])
        })
        .collect()
}

/// The simulated time of a decoded JSONL line: a `SimEvent`'s `t`, or a
/// trace event's `t_s`.
fn event_time(v: &serde_json::Value) -> Option<f64> {
    if let Some(t) = v.get("t").and_then(|t| t.as_f64()) {
        return Some(t);
    }
    v.get("event")
        .and_then(|e| e.get("t_s"))
        .and_then(|t| t.as_f64())
}

/// The job a decoded line concerns, if any.
fn event_job(v: &serde_json::Value) -> Option<u64> {
    let kind = v.get("kind").or_else(|| v.get("event"))?;
    kind.get("job").and_then(|j| j.as_u64())
}

/// The round a decoded *trace* line carries directly (Round and
/// EstimatorSample events), if any.
fn event_round(v: &serde_json::Value) -> Option<u64> {
    v.get("event")
        .and_then(|e| e.get("round"))
        .and_then(|r| r.as_u64())
}

/// A one-line description of a JSONL line: the tagged event kind plus
/// the job, falling back to the raw line's first bytes.
fn describe_line(line: &str) -> String {
    let Ok(v) = serde_json::from_str::<serde_json::Value>(line) else {
        return line.chars().take(60).collect();
    };
    let kind = v
        .get("kind")
        .and_then(|k| k.get("kind"))
        .or_else(|| v.get("event").and_then(|e| e.get("event")))
        .and_then(|k| k.as_str())
        .map(str::to_string)
        .unwrap_or_else(|| line.chars().take(40).collect());
    match event_job(&v) {
        Some(job) => format!("{kind} (job {job})"),
        None => kind,
    }
}

/// The scheduling round in force at simulated time `t`, resolved from a
/// run's canonical trace: the greatest `Round` event with `t_s ≤ t`.
fn round_at(run: &LoadedRun, t: f64) -> Option<u64> {
    let trace = run.artifacts.get(TRACE_ARTIFACT)?;
    let mut best = None;
    for line in trace.lines() {
        let Ok(v) = serde_json::from_str::<serde_json::Value>(line) else {
            continue;
        };
        let Some(event) = v.get("event") else {
            continue;
        };
        if event.get("event").and_then(|k| k.as_str()) != Some("Round") {
            continue;
        }
        let (Some(round), Some(t_s)) = (
            event.get("round").and_then(|r| r.as_u64()),
            event.get("t_s").and_then(|x| x.as_f64()),
        ) else {
            continue;
        };
        if t_s <= t + 1e-9 {
            best = Some(best.map_or(round, |b: u64| b.max(round)));
        }
    }
    best
}

/// Decision-trace context for a round: the `Round` event for `round`
/// in the run's canonical trace, with `±CONTEXT` surrounding lines.
fn trace_context(run: &LoadedRun, round: u64) -> Vec<String> {
    let Some(trace) = run.artifacts.get(TRACE_ARTIFACT) else {
        return Vec::new();
    };
    let lines: Vec<&str> = trace.lines().collect();
    let needle = lines.iter().position(|line| {
        serde_json::from_str::<serde_json::Value>(line)
            .ok()
            .and_then(|v| {
                let e = v.get("event")?;
                if e.get("event").and_then(|k| k.as_str()) != Some("Round") {
                    return None;
                }
                e.get("round").and_then(|r| r.as_u64())
            })
            == Some(round)
    });
    match needle {
        Some(idx) => context(&lines, idx),
        None => Vec::new(),
    }
}
