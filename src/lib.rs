#![warn(missing_docs)]

//! Optimus — a reproduction of *"Optimus: An Efficient Dynamic Resource
//! Scheduler for Deep Learning Clusters"* (Peng et al., EuroSys 2018).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`fitting`] — NNLS, loss-curve and linear-model fitting (§3),
//! * [`cluster`] — servers, resources, the 13-server testbed (§6.1),
//! * [`workload`] — the Table-1 model zoo, loss curves, arrivals,
//! * [`ps`] — the parameter-server execution model (Eqn 2, §5),
//! * [`core`] — the Optimus scheduler and the DRF/Tetris baselines (§4),
//! * [`simulator`] — the discrete-time cluster simulator (§6),
//! * [`orchestrator`] — a Kubernetes-like mini control plane (§5.5),
//! * [`bridge`] — run the simulator *through* the control plane
//!   (scheduler pod, pods, kubelets) instead of calling the scheduler
//!   directly.
//!
//! # Examples
//!
//! ```
//! use optimus::prelude::*;
//!
//! // Simulate three jobs on the paper's testbed under Optimus.
//! let jobs = WorkloadGenerator::new(ArrivalProcess::paper_default(3), 7).generate();
//! let mut sim = Simulation::new(
//!     Cluster::paper_testbed(),
//!     jobs,
//!     Box::new(OptimusScheduler::build()),
//!     SimConfig {
//!         max_time_s: 150_000.0,
//!         ..SimConfig::default()
//!     },
//! );
//! let report = sim.run();
//! assert_eq!(report.unfinished_jobs, 0);
//! ```

pub mod bridge;
pub mod ledger;
pub mod timeline;

pub use optimus_cluster as cluster;
pub use optimus_core as core;
pub use optimus_fitting as fitting;
pub use optimus_orchestrator as orchestrator;
pub use optimus_ps as ps;
pub use optimus_simulator as simulator;
pub use optimus_telemetry as telemetry;
pub use optimus_workload as workload;

/// The most common imports for examples and downstream users.
pub mod prelude {
    pub use optimus_cluster::{Cluster, ResourceKind, ResourceVec, ServerId};
    pub use optimus_core::prelude::*;
    pub use optimus_fitting::{LossCurveFitter, LossModel};
    pub use optimus_ps::{EnvFactors, PsAssignment, PsJobModel, TaskCounts};
    pub use optimus_simulator::{
        AssignmentPolicy, ErrorInjection, JctBreakdown, SimConfig, SimEngine, SimReport, Simulation,
    };
    pub use optimus_telemetry::{FlightConfig, FlightLog, Telemetry, TelemetrySummary, TraceEvent};
    pub use optimus_workload::{
        ArrivalProcess, GroundTruthCurve, JobId, JobSpec, ModelKind, TrainingMode,
        WorkloadGenerator,
    };
}
