//! `optimus-trace` — inspect Optimus telemetry traces and run ledgers.
//!
//! Three modes:
//!
//! * **summarize** — per-job timelines, scheduling-round percentiles and
//!   the final counter/histogram snapshot of a telemetry JSONL trace
//!   (written by `optimus-sim run --trace FILE`), or of a run ledger
//!   directory (written by `--ledger DIR`), including the estimator
//!   audit (`--models`);
//! * **timeline** — render a run-ledger directory as a per-job Gantt
//!   chart plus the flight recorder's utilization timeline;
//! * **why** — explain one job's decisions from a run's
//!   decision-provenance ledger (`provenance.jsonl`): the winning
//!   marginal gain and the runner-ups it beat, the placement candidates
//!   rejected on the way, and which delta path produced the grant;
//! * **diff** — compare two run-ledger directories artifact by artifact
//!   and localize the first divergent round/job/event;
//! * **check-bench** — regression watchdog over the committed
//!   `BENCH_sched.json` / `BENCH_fit.json` / `BENCH_sim.json` history
//!   files.

use optimus::fitting::stats::{mean, p50_p95_p99};
use optimus::ledger::{self, LoadedRun};
use optimus::telemetry::provenance::parse_why_lines;
use optimus::telemetry::{DeltaWhy, PlaceReject, TraceEvent, TraceLine, WhyRecord, SCHEMA_VERSION};
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
optimus-trace — summarize Optimus telemetry traces and run ledgers

USAGE:
  optimus-trace FILE|RUN_DIR [--top N] [--no-jobs] [--spans] [--models]
  optimus-trace timeline RUN_DIR [--width N] [--segments FILE] [--chrome FILE]
  optimus-trace why [JOB] RUN_DIR [--round R] [--summary] [--ledger RUN_DIR]
  optimus-trace diff [--ignore ARTIFACT]... RUN_A RUN_B
  optimus-trace check-bench [--sched FILE] [--fit FILE] [--sim FILE]
                            [--tolerance F]

SUMMARIZE FLAGS:
  --top N       counters to list                 (default 10)
  --no-jobs     skip the per-job timelines
  --spans       also print the per-span-name aggregates
  --models      print the estimator-accuracy audit (speed & convergence)

TIMELINE:
  Renders a run directory written with --ledger: one Gantt lane per job
  from events.jsonl, plus the flight recorder's utilization timeline
  from flight.jsonl when present.
  --width N        chart width, columns          (default 72)
  --segments FILE  also export the typed Gantt segments as JSONL
  --chrome FILE    also export the utilization as Chrome counter tracks

WHY:
  Explains decisions from a run's provenance.jsonl (recorded by
  `optimus-sim run --ledger`). With JOB alone, prints the job's
  round-by-round decision history; with --round R, the full story of
  that round: winning allocation gain vs its runner-ups, rejected
  placement candidates with reasons, and the delta path (replayed
  grant with originating round, solo re-derive, or certificate-failure
  fallback). --summary aggregates the whole run (or one job) instead.
  Exit code 2 when the run carries no provenance or the job/round has
  no record.

DIFF:
  Compares two run directories written with --ledger. Exit code 0 when
  the runs are identical, 1 when they diverge, 2 on error — or when
  the runs cannot be compared line-by-line because an artifact exists
  on only one side (e.g. a provenance.jsonl recorded in one run only).

CHECK-BENCH FLAGS:
  --sched FILE     scheduling bench history      (default BENCH_sched.json)
  --fit FILE       fitting bench history         (default BENCH_fit.json)
  --sim FILE       whole-sim throughput history  (default BENCH_sim.json)
  --tolerance F    allowed regression vs best prior entry (default 0.10)
  Exit code 1 when the newest entry regresses past the tolerance.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return if args.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    match args[0].as_str() {
        "timeline" => cmd_timeline(&args[1..]),
        "why" => cmd_why(&args[1..]),
        "diff" => cmd_diff(&args[1..]),
        "check-bench" => cmd_check_bench(&args[1..]),
        _ => cmd_summarize(&args),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

// -- summarize --------------------------------------------------------

fn cmd_summarize(args: &[String]) -> ExitCode {
    let path = &args[0];
    let top: usize = match flag_value(args, "--top") {
        None => 10,
        Some(raw) => match raw.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("invalid value for --top: {raw}");
                return ExitCode::FAILURE;
            }
        },
    };

    // A directory is a run ledger: print its manifest, then summarize
    // the canonical trace artifact it carries.
    let text = if Path::new(path).is_dir() {
        let run = match ledger::load_run(Path::new(path)) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        print_manifest(&run);
        match run.artifacts.get(ledger::TRACE_ARTIFACT) {
            Some(trace) => trace.clone(),
            None => {
                println!("(no {} artifact to summarize)", ledger::TRACE_ARTIFACT);
                return ExitCode::SUCCESS;
            }
        }
    } else {
        match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut lines = Vec::new();
    let mut bad = 0usize;
    for raw in text.lines().filter(|l| !l.trim().is_empty()) {
        match serde_json::from_str::<TraceLine>(raw) {
            Ok(line) => lines.push(line),
            Err(_) => bad += 1,
        }
    }
    if lines.is_empty() {
        eprintln!("error: {path}: no parseable trace lines ({bad} unparseable)");
        return ExitCode::FAILURE;
    }
    if bad > 0 {
        eprintln!("warning: skipped {bad} unparseable lines");
    }
    if let Err(e) = check_versions(&lines) {
        eprintln!("error: {path}: {e}");
        return ExitCode::FAILURE;
    }

    print_overview(path, &lines);
    print_rounds(&lines);
    if !args.iter().any(|a| a == "--no-jobs") {
        print_jobs(&lines);
    }
    if args.iter().any(|a| a == "--models") {
        print_models(&lines);
    }
    print_counters(&lines, top);
    print_histograms(&lines);
    if args.iter().any(|a| a == "--spans") {
        print_spans(&lines);
    }
    ExitCode::SUCCESS
}

/// Rejects traces written by a *newer* schema than this build knows;
/// warns once about legacy lines (missing or older version).
fn check_versions(lines: &[TraceLine]) -> Result<(), String> {
    let mut newer = 0usize;
    let mut legacy = 0usize;
    for line in lines {
        match line.version() {
            Some(v) if v > SCHEMA_VERSION => newer += 1,
            Some(v) if v < SCHEMA_VERSION => legacy += 1,
            None => legacy += 1,
            Some(_) => {}
        }
    }
    if newer > 0 {
        return Err(format!(
            "{newer} lines carry a trace schema newer than this build \
             supports (v{SCHEMA_VERSION}); rebuild optimus-trace"
        ));
    }
    if legacy > 0 {
        eprintln!(
            "warning: {legacy} lines predate trace schema v{SCHEMA_VERSION}; \
             newer fields read as absent"
        );
    }
    Ok(())
}

fn print_manifest(run: &LoadedRun) {
    let m = &run.manifest;
    println!("run: {} ({})", run.dir.display(), m.kind);
    println!(
        "  label {:?}  scheduler {:?}  seed {}  threads {}",
        m.label, m.scheduler, m.seed, m.threads
    );
    println!(
        "  manifest v{}  trace schema v{}  git {}",
        m.manifest_version,
        m.schema_version,
        m.git.as_deref().unwrap_or("<unknown>")
    );
    for a in &m.artifacts {
        println!("  {:>9} lines  {}  {}", a.lines, a.hash, a.name);
    }
    // Saturated histograms mean the recorded tails are clamped: any
    // percentile read from this run's buckets past the bound edge is a
    // lower bound, not an estimate.
    if let Some(summary) = &m.summary {
        for h in summary.saturated_histograms() {
            println!(
                "  SATURATED histogram {}: {} past top bound, {} below bottom",
                h.name,
                h.overflow,
                h.underflow.unwrap_or(0)
            );
        }
    }
    println!();
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn pctl(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Quantile estimate from exported histogram buckets: the upper bound
/// of the bucket holding the nearest-rank observation, clamped to the
/// observed range (mirrors the collector's own estimator).
fn hist_quantile(bounds: &[f64], counts: &[u64], count: u64, min: f64, max: f64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut acc = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        acc += c;
        if acc >= target {
            let ub = if i < bounds.len() { bounds[i] } else { max };
            return ub.clamp(min, max);
        }
    }
    max
}

fn print_overview(path: &str, lines: &[TraceLine]) {
    let mut events = 0usize;
    let mut spans = 0usize;
    let mut counters = 0usize;
    let mut gauges = 0usize;
    let mut histograms = 0usize;
    for line in lines {
        match line {
            TraceLine::Event { .. } => events += 1,
            TraceLine::Span { .. } => spans += 1,
            TraceLine::Counter { .. } => counters += 1,
            TraceLine::Gauge { .. } => gauges += 1,
            TraceLine::Histogram { .. } => histograms += 1,
        }
    }
    println!("trace: {path}");
    println!(
        "  {events} decision events, {spans} spans, {counters} counters, \
         {gauges} gauges, {histograms} histograms"
    );
}

fn print_rounds(lines: &[TraceLine]) {
    let mut walls = Vec::new();
    let mut last = None;
    for line in lines {
        if let TraceLine::Event {
            event:
                TraceEvent::Round {
                    round,
                    t_s,
                    active_jobs,
                    wall_us,
                },
            ..
        } = line
        {
            walls.push(*wall_us as f64);
            last = Some((*round, *t_s, *active_jobs));
        }
    }
    if walls.is_empty() {
        return;
    }
    walls.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
    let mean = walls.iter().sum::<f64>() / walls.len() as f64;
    let (rounds, t_s, _) = last.expect("walls non-empty");
    println!("\nscheduling rounds: {rounds} over {t_s:.0} s of simulated time");
    println!(
        "  wall per round: mean {:.0} us, p50 {:.0} us, p95 {:.0} us, p99 {:.0} us, max {:.0} us",
        mean,
        pctl(&walls, 0.50),
        pctl(&walls, 0.95),
        pctl(&walls, 0.99),
        walls[walls.len() - 1],
    );
    // Delta-round accounting (PR 9): how much churn the driver reported
    // and how often whole rounds were provably skippable. The counters
    // exist only on runs recorded by a delta-tracking simulator.
    let counter = |wanted: &str| {
        lines.iter().find_map(|l| match l {
            TraceLine::Counter { name, value, .. } if name == wanted => Some(*value),
            _ => None,
        })
    };
    if let Some(dirty) = counter("round.delta_jobs") {
        let skipped = counter("round.skipped_full").unwrap_or(0);
        let replayed = counter("alloc.replayed_grants").unwrap_or(0);
        println!(
            "  delta rounds: {dirty} dirty views total (mean {:.1}/round), \
             {skipped} of {rounds} rounds skipped whole, {replayed} grants replayed",
            dirty as f64 / rounds.max(1) as f64,
        );
    }
    // Certificate-fallback accounting: not just how often the
    // uncontended certificate failed, but *which resource term* failed
    // it (the `alloc.cert_fail.<term>` counter family).
    if let Some(fallbacks) = counter("alloc.cert_fallbacks") {
        const PREFIX: &str = "alloc.cert_fail.";
        let mut reasons: Vec<(&str, u64)> = lines
            .iter()
            .filter_map(|l| match l {
                TraceLine::Counter { name, value, .. } if name.starts_with(PREFIX) => {
                    Some((&name[PREFIX.len()..], *value))
                }
                _ => None,
            })
            .collect();
        reasons.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let detail: Vec<String> = reasons
            .iter()
            .map(|(term, n)| format!("{term} ×{n}"))
            .collect();
        println!(
            "  certificate fallbacks: {fallbacks} (failing term: {})",
            if detail.is_empty() {
                "unknown".to_string()
            } else {
                detail.join(", ")
            }
        );
    }
}

#[derive(Default)]
struct JobDigest {
    timeline: Vec<(f64, String)>,
    grants: usize,
    placements: usize,
    speed_fits: usize,
    convergence_fits: usize,
    fit_failures: usize,
}

fn print_jobs(lines: &[TraceLine]) {
    let mut jobs: BTreeMap<u64, JobDigest> = BTreeMap::new();
    for line in lines {
        let event = match line {
            TraceLine::Event { event, .. } => event,
            _ => continue,
        };
        match event {
            TraceEvent::JobEvent { t_s, job, what } => {
                jobs.entry(*job)
                    .or_default()
                    .timeline
                    .push((*t_s, what.clone()));
            }
            TraceEvent::AllocGrant { job, .. } => jobs.entry(*job).or_default().grants += 1,
            TraceEvent::Placement { job, .. } => jobs.entry(*job).or_default().placements += 1,
            TraceEvent::SpeedFit { job, .. } => jobs.entry(*job).or_default().speed_fits += 1,
            TraceEvent::ConvergenceFit { job, .. } => {
                jobs.entry(*job).or_default().convergence_fits += 1
            }
            TraceEvent::FitFailure { job, .. } => jobs.entry(*job).or_default().fit_failures += 1,
            _ => {}
        }
    }
    if jobs.is_empty() {
        return;
    }
    println!("\nper-job timelines:");
    for (id, digest) in &jobs {
        println!(
            "  job {id}: {} grants, {} placements, {} speed fits, \
             {} convergence fits, {} fit failures",
            digest.grants,
            digest.placements,
            digest.speed_fits,
            digest.convergence_fits,
            digest.fit_failures,
        );
        // Collapse runs of identical edges ("paused ×12") to keep long
        // traces readable.
        let mut i = 0;
        while i < digest.timeline.len() {
            let (t, what) = &digest.timeline[i];
            let mut j = i + 1;
            while j < digest.timeline.len() && digest.timeline[j].1 == *what {
                j += 1;
            }
            if j - i > 1 {
                println!("    {t:>9.0} s  {what} ×{}", j - i);
            } else {
                println!("    {t:>9.0} s  {what}");
            }
            i = j;
        }
    }
}

/// The estimator-accuracy audit: per-model signed-error digests (exact
/// percentiles over the recorded samples, not bucketed), the rolling
/// calibration scores, and the worst-audited jobs.
fn print_models(lines: &[TraceLine]) {
    let mut by_model: BTreeMap<&str, Vec<(u64, f64)>> = BTreeMap::new();
    for line in lines {
        if let TraceLine::Event {
            event:
                TraceEvent::EstimatorSample {
                    job,
                    model,
                    rel_err,
                    ..
                },
            ..
        } = line
        {
            by_model
                .entry(model.as_str())
                .or_default()
                .push((*job, *rel_err));
        }
    }
    println!("\nestimator audit:");
    if by_model.is_empty() {
        println!("  (no EstimatorSample events — run with telemetry or --ledger)");
        return;
    }
    let gauge = |name: &str| {
        lines.iter().find_map(|l| match l {
            TraceLine::Gauge { name: n, value, .. } if n == name => Some(*value),
            _ => None,
        })
    };
    for (model, samples) in &by_model {
        let errs: Vec<f64> = samples.iter().map(|&(_, e)| e).collect();
        let (p50, p95, p99) = p50_p95_p99(&errs);
        let calibration = gauge(&format!("audit.{model}_calibration"));
        println!(
            "  {model}: n={} mean signed err {:+.3}, p50 {:+.3}, p95 {:+.3}, p99 {:+.3}{}",
            errs.len(),
            mean(&errs),
            p50,
            p95,
            p99,
            match calibration {
                Some(c) => format!(", calibration {c:.3}"),
                None => String::new(),
            }
        );
        // Worst jobs by mean |signed error|.
        let mut per_job: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
        for &(job, err) in samples {
            per_job.entry(job).or_default().push(err.abs());
        }
        let mut ranked: Vec<(u64, f64, usize)> = per_job
            .iter()
            .map(|(&job, errs)| (job, mean(errs), errs.len()))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite errors"));
        for (job, mean_abs, n) in ranked.iter().take(3) {
            println!("    worst: job {job} mean |err| {mean_abs:.3} over {n} samples");
        }
    }
}

fn print_counters(lines: &[TraceLine], top: usize) {
    let mut counters: Vec<(&str, u64)> = lines
        .iter()
        .filter_map(|l| match l {
            TraceLine::Counter { name, value, .. } => Some((name.as_str(), *value)),
            _ => None,
        })
        .collect();
    if counters.is_empty() {
        return;
    }
    counters.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    println!("\ntop counters:");
    for (name, value) in counters.iter().take(top) {
        println!("  {value:>12}  {name}");
    }
    if counters.len() > top {
        println!("  ... and {} more", counters.len() - top);
    }
}

fn print_histograms(lines: &[TraceLine]) {
    let mut any = false;
    for line in lines {
        if let TraceLine::Histogram {
            name,
            bounds,
            counts,
            count,
            sum,
            min,
            max,
            underflow,
            ..
        } = line
        {
            if !any {
                println!("\nhistograms:");
                any = true;
            }
            let mean = if *count == 0 {
                0.0
            } else {
                sum / *count as f64
            };
            let overflow = counts.last().copied().unwrap_or(0);
            // Legacy traces (schema < 3) carry no underflow count —
            // treat it as unknown-zero for display.
            let underflow = underflow.unwrap_or(0);
            let saturation = match (overflow > 0, underflow > 0) {
                (true, true) => format!(
                    "  SATURATED ({overflow} past top bound, {underflow} below bottom; \
                     edge quantiles clamped)"
                ),
                (true, false) => {
                    format!("  SATURATED ({overflow} past top bound; tail quantiles clamped)")
                }
                (false, true) => {
                    format!("  SATURATED ({underflow} below bottom bound; low quantiles clamped)")
                }
                (false, false) => String::new(),
            };
            println!(
                "  {name}: n={count} mean={mean:.1} p50={:.1} p95={:.1} p99={:.1} max={max:.1}{saturation}",
                hist_quantile(bounds, counts, *count, *min, *max, 0.50),
                hist_quantile(bounds, counts, *count, *min, *max, 0.95),
                hist_quantile(bounds, counts, *count, *min, *max, 0.99),
            );
        }
    }
}

fn print_spans(lines: &[TraceLine]) {
    struct Agg {
        count: usize,
        total_us: u64,
        durs_us: Vec<f64>,
    }
    let mut by_name: BTreeMap<&str, Agg> = BTreeMap::new();
    for line in lines {
        if let TraceLine::Span { name, dur_us, .. } = line {
            let agg = by_name.entry(name.as_str()).or_insert(Agg {
                count: 0,
                total_us: 0,
                durs_us: Vec::new(),
            });
            agg.count += 1;
            agg.total_us += dur_us;
            agg.durs_us.push(*dur_us as f64);
        }
    }
    if by_name.is_empty() {
        return;
    }
    // Per-name latency percentiles: `sched.decision` here is the
    // per-round decision latency (one span per scheduling round).
    println!("\nspans:");
    for (name, agg) in by_name.iter_mut() {
        agg.durs_us
            .sort_by(|a, b| a.partial_cmp(b).expect("span durations are finite"));
        println!(
            "  {name}: n={} total={} us mean={:.0} us p50={:.0} us p95={:.0} us p99={:.0} us max={:.0} us",
            agg.count,
            agg.total_us,
            agg.total_us as f64 / agg.count as f64,
            pctl(&agg.durs_us, 0.50),
            pctl(&agg.durs_us, 0.95),
            pctl(&agg.durs_us, 0.99),
            agg.durs_us[agg.durs_us.len() - 1],
        );
    }
}

// -- timeline ---------------------------------------------------------

/// `timeline RUN_DIR`: the per-job Gantt from the run's event log plus
/// the utilization timeline from its flight-recorder snapshots.
fn cmd_timeline(args: &[String]) -> ExitCode {
    let Some(dir) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: optimus-trace timeline RUN_DIR [--width N]");
        return ExitCode::from(2);
    };
    let width: usize = match flag_value(args, "--width") {
        None => optimus::timeline::DEFAULT_WIDTH,
        Some(raw) => match raw.parse() {
            Ok(w) => w,
            Err(_) => {
                eprintln!("invalid value for --width: {raw}");
                return ExitCode::from(2);
            }
        },
    };
    let run = match ledger::load_run(Path::new(dir)) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let render = || -> Result<(), String> {
        println!("timeline: {} ({:?})", run.dir.display(), run.manifest.label);
        match run.artifacts.get(ledger::EVENTS_ARTIFACT) {
            Some(body) => {
                let events = optimus::timeline::parse_events(body)?;
                print!("{}", optimus::timeline::render_gantt(&events, width));
                if let Some(path) = flag_value(args, "--segments") {
                    std::fs::write(path, optimus::timeline::segments_json_lines(&events))
                        .map_err(|e| format!("{path}: {e}"))?;
                    eprintln!("gantt segments written to {path}");
                }
            }
            None => println!(
                "(no {} artifact — re-record with --ledger)",
                ledger::EVENTS_ARTIFACT
            ),
        }
        println!();
        match run.artifacts.get(ledger::FLIGHT_ARTIFACT) {
            Some(body) => {
                let log = optimus::telemetry::FlightLog::from_json_lines(body)
                    .map_err(|e| format!("{}: {e}", ledger::FLIGHT_ARTIFACT))?;
                print!("{}", optimus::timeline::render_utilization(&log, width));
                if let Some(path) = flag_value(args, "--chrome") {
                    std::fs::write(path, log.to_chrome_counter_tracks())
                        .map_err(|e| format!("{path}: {e}"))?;
                    eprintln!("chrome counter tracks written to {path}");
                }
            }
            None => println!(
                "(no {} artifact — this run predates the flight recorder \
                 or ran without it)",
                ledger::FLIGHT_ARTIFACT
            ),
        }
        Ok(())
    };
    match render() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

// -- why --------------------------------------------------------------

/// `why [JOB] RUN_DIR [--round R] [--summary]`: explain a job's
/// decisions from the run's decision-provenance ledger.
fn cmd_why(args: &[String]) -> ExitCode {
    let mut round: Option<u64> = None;
    let mut summary = false;
    let mut dir: Option<&str> = None;
    let mut job: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--round" => match it.next().and_then(|r| r.parse().ok()) {
                Some(r) => round = Some(r),
                None => {
                    eprintln!("--round requires a round number");
                    return ExitCode::from(2);
                }
            },
            "--ledger" => match it.next() {
                Some(d) => dir = Some(d),
                None => {
                    eprintln!("--ledger requires a run directory");
                    return ExitCode::from(2);
                }
            },
            "--summary" => summary = true,
            other if other.starts_with("--") => {
                eprintln!("unknown flag for why: {other}");
                return ExitCode::from(2);
            }
            other => {
                // First numeric positional is the job; anything else is
                // the run directory (same as --ledger).
                if job.is_none() {
                    if let Ok(j) = other.parse() {
                        job = Some(j);
                        continue;
                    }
                }
                if dir.is_none() {
                    dir = Some(other);
                } else {
                    eprintln!("unexpected argument for why: {other}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    let usage = "usage: optimus-trace why [JOB] RUN_DIR [--round R] [--summary]";
    let Some(dir) = dir else {
        eprintln!("{usage}");
        return ExitCode::from(2);
    };
    if job.is_none() && !summary {
        eprintln!("{usage}\n(give a JOB id, or --summary for run-wide aggregates)");
        return ExitCode::from(2);
    }
    let run = match ledger::load_run(Path::new(dir)) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(body) = run.artifacts.get(ledger::PROVENANCE_ARTIFACT) else {
        eprintln!(
            "error: {}: no {} artifact — this run predates decision provenance; \
             re-record with `optimus-sim run --ledger`",
            run.dir.display(),
            ledger::PROVENANCE_ARTIFACT
        );
        return ExitCode::from(2);
    };
    let records = match parse_why_lines(body) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {}: {e}", run.dir.display());
            return ExitCode::from(2);
        }
    };
    if let Some(v) = records.iter().filter_map(|r| r.v).max() {
        if v > SCHEMA_VERSION {
            eprintln!(
                "error: provenance records carry schema v{v}, newer than this \
                 build supports (v{SCHEMA_VERSION}); rebuild optimus-trace"
            );
            return ExitCode::from(2);
        }
    }
    if summary {
        print_why_summary(&run, &records, job);
        return ExitCode::SUCCESS;
    }
    let job = job.expect("checked above");
    let of_job: Vec<&WhyRecord> = records.iter().filter(|r| r.job == job).collect();
    if of_job.is_empty() {
        eprintln!(
            "error: job {job} has no provenance records in {} \
             (jobs present: {})",
            run.dir.display(),
            known_jobs(&records)
        );
        return ExitCode::from(2);
    }
    match round {
        None => print_why_history(&run, job, &of_job),
        Some(round) => {
            let Some(rec) = of_job.iter().find(|r| r.round == round) else {
                let rounds: Vec<String> = of_job.iter().map(|r| r.round.to_string()).collect();
                eprintln!(
                    "error: job {job} has no record for round {round} \
                     (rounds with records: {})",
                    rounds.join(", ")
                );
                return ExitCode::from(2);
            };
            print_why_detail(&run, rec, &records);
        }
    }
    ExitCode::SUCCESS
}

/// A short comma list of the distinct jobs present in the records.
fn known_jobs(records: &[WhyRecord]) -> String {
    let mut jobs: Vec<u64> = records.iter().map(|r| r.job).collect();
    jobs.sort_unstable();
    jobs.dedup();
    let mut shown: Vec<String> = jobs.iter().take(20).map(u64::to_string).collect();
    if jobs.len() > shown.len() {
        shown.push(format!("… {} total", jobs.len()));
    }
    shown.join(", ")
}

/// One-word delta-path tag for history rows.
fn delta_tag(delta: &DeltaWhy) -> String {
    match delta {
        DeltaWhy::Full => "full".into(),
        DeltaWhy::Replay { origin_round, .. } => format!("replay←r{origin_round}"),
        DeltaWhy::Derive { .. } => "derive".into(),
        DeltaWhy::Fallback { term, .. } => format!("fallback({term})"),
        DeltaWhy::Precondition { reason } => format!("full({reason})"),
    }
}

/// `why JOB RUN_DIR`: the job's round-by-round decision history.
fn print_why_history(run: &LoadedRun, job: u64, recs: &[&WhyRecord]) {
    println!(
        "why: job {job} in {} — {} rounds with records",
        run.dir.display(),
        recs.len()
    );
    println!(
        "  {:>6}  {:>4} {:>8}  {:<14} {:<26} winning gain",
        "round", "ps", "workers", "path", "placed"
    );
    for rec in recs {
        let placed = match &rec.place {
            Some(p) if p.ps + p.workers > 0 => format!(
                "{} ps × {} workers on {} srv{}{}",
                p.ps,
                p.workers,
                p.servers,
                if p.shrunk > 0 {
                    format!(" (-{})", p.shrunk)
                } else {
                    String::new()
                },
                if p.replayed { " [replayed]" } else { "" },
            ),
            Some(_) => "unplaced".into(),
            None => "-".into(),
        };
        let gain = match &rec.alloc {
            Some(a) => format!("{:.4} ({})", a.gain, a.action),
            None => "-".into(),
        };
        println!(
            "  {:>6}  {:>4} {:>8}  {:<14} {:<26} {}",
            rec.round,
            rec.ps,
            rec.workers,
            delta_tag(&rec.delta),
            placed,
            gain
        );
    }
    println!("\n(use --round R for the full story of one round)");
}

/// `why JOB RUN_DIR --round R`: the full story of one decision.
fn print_why_detail(run: &LoadedRun, rec: &WhyRecord, all: &[WhyRecord]) {
    println!(
        "why: job {} round {} in {}",
        rec.job,
        rec.round,
        run.dir.display()
    );
    println!("  grant: {} ps × {} workers", rec.ps, rec.workers);

    println!("\nallocation:");
    match &rec.alloc {
        Some(a) => {
            println!(
                "  winning gain {:.6} on \"{}\" \
                 (dominant share: worker {:.4}, ps {:.4})",
                a.gain, a.action, a.dom_worker, a.dom_ps
            );
            println!(
                "  priority: factor {}, young-job damping {}",
                a.priority_factor,
                if a.young { "on" } else { "off" }
            );
            if a.runners_up.is_empty() {
                println!("  runners-up: none (no live rival candidate at grant time)");
            } else {
                println!("  runners-up beaten (best first):");
                for r in &a.runners_up {
                    println!(
                        "    job {} \"{}\" gain {:.6}  (margin {:+.6})",
                        r.job,
                        r.action,
                        r.gain,
                        a.gain - r.gain
                    );
                }
            }
        }
        None => println!(
            "  no fresh allocation story this round — the grant was replayed \
             or starter-only (see the delta path below)"
        ),
    }

    println!("\nplacement:");
    match &rec.place {
        Some(p) if p.ps + p.workers > 0 => {
            println!(
                "  placed {} ps × {} workers across {} server(s){}{}",
                p.ps,
                p.workers,
                p.servers,
                if p.shrunk > 0 {
                    format!(", {} task(s) shed by shrink retries", p.shrunk)
                } else {
                    String::new()
                },
                if p.replayed {
                    " [layout replayed from the previous round]"
                } else {
                    ""
                },
            );
            print_rejections(p.rejections, &p.rejected);
        }
        Some(p) => {
            println!("  unplaced — paused for this interval (§4.2)");
            print_rejections(p.rejections, &p.rejected);
        }
        None => println!("  job was not handed to the placer this round"),
    }

    println!("\ndelta path:");
    match &rec.delta {
        DeltaWhy::Full => println!("  full allocation pass"),
        DeltaWhy::Replay {
            origin_round,
            slack,
            term,
        } => {
            println!(
                "  grant replayed unchanged from round {origin_round} \
                 (uncontended certificate held; binding term \"{term}\"{})",
                fmt_slack(*slack)
            );
            match all
                .iter()
                .find(|r| r.round == *origin_round && r.job == rec.job)
            {
                Some(origin) => println!(
                    "  originating round {} was decided by: {}",
                    origin_round,
                    delta_tag(&origin.delta)
                ),
                None => println!("  (originating round {origin_round} has no record in this run)"),
            }
        }
        DeltaWhy::Derive { slack, term } => println!(
            "  grant re-derived by an independent solo climb — the job was \
             dirty but the certificate held (binding term \"{term}\"{})",
            fmt_slack(*slack)
        ),
        DeltaWhy::Fallback {
            term,
            used,
            max_unit,
            total,
            slack,
        } => println!(
            "  full-pass fallback: certificate term \"{term}\" failed \
             (used {used:.2} + 2 × max unit {max_unit:.2} > total {total:.2}; \
             slack {slack:.2})"
        ),
        DeltaWhy::Precondition { reason } => println!(
            "  full pass forced before the certificate was consulted: \
             precondition \"{reason}\""
        ),
    }
}

/// Renders a certificate slack unless it is the "no applicable term"
/// sentinel (`f64::MAX`).
fn fmt_slack(slack: f64) -> String {
    if slack >= f64::MAX {
        String::new()
    } else {
        format!(", slack {slack:.2}")
    }
}

fn print_rejections(total: u64, rejected: &[PlaceReject]) {
    if total == 0 {
        println!("  rejections: none — the first probed layout won");
        return;
    }
    println!("  rejections before this layout won: {total}");
    for r in rejected {
        match r {
            PlaceReject::KPrefix { k } => {
                println!("    k-prefix bound: no feasible split on a {k}-server prefix")
            }
            PlaceReject::AggregateEarlyExit { servers } => println!(
                "    aggregate early exit: total free capacity over {servers} \
                 indexed server(s) cannot cover the job"
            ),
            PlaceReject::Capacity { ps, workers } => println!(
                "    capacity: whole configuration {ps} ps × {workers} workers \
                 shed, job shrunk"
            ),
        }
    }
    if (rejected.len() as u64) < total {
        println!(
            "    … and {} more (not retained)",
            total - rejected.len() as u64
        );
    }
}

/// `why --summary`: run-wide (or one-job) aggregates over the ledger.
fn print_why_summary(run: &LoadedRun, records: &[WhyRecord], job: Option<u64>) {
    let recs: Vec<&WhyRecord> = records
        .iter()
        .filter(|r| job.is_none_or(|j| r.job == j))
        .collect();
    match job {
        Some(j) => println!(
            "why summary: job {j} in {} — {} records",
            run.dir.display(),
            recs.len()
        ),
        None => println!(
            "why summary: {} — {} records, {} jobs",
            run.dir.display(),
            recs.len(),
            known_jobs(records)
        ),
    }
    if recs.is_empty() {
        return;
    }

    let (mut full, mut replay, mut derive, mut fallback, mut precond) = (0u64, 0, 0, 0, 0);
    let mut cert_terms: BTreeMap<&str, u64> = BTreeMap::new();
    let mut fail_terms: BTreeMap<&str, u64> = BTreeMap::new();
    let mut precond_reasons: BTreeMap<&str, u64> = BTreeMap::new();
    for rec in &recs {
        match &rec.delta {
            DeltaWhy::Full => full += 1,
            DeltaWhy::Replay { term, .. } => {
                replay += 1;
                *cert_terms.entry(term.as_str()).or_insert(0) += 1;
            }
            DeltaWhy::Derive { term, .. } => {
                derive += 1;
                *cert_terms.entry(term.as_str()).or_insert(0) += 1;
            }
            DeltaWhy::Fallback { term, .. } => {
                fallback += 1;
                *fail_terms.entry(term.as_str()).or_insert(0) += 1;
            }
            DeltaWhy::Precondition { reason } => {
                precond += 1;
                *precond_reasons.entry(reason.as_str()).or_insert(0) += 1;
            }
        }
    }
    println!("\ndelta paths:");
    println!("  {full:>8}  full pass");
    println!("  {replay:>8}  replayed grants");
    println!("  {derive:>8}  solo re-derives");
    println!("  {fallback:>8}  certificate fallbacks");
    println!("  {precond:>8}  precondition full passes");
    let fmt_terms = |terms: &BTreeMap<&str, u64>| {
        terms
            .iter()
            .map(|(t, n)| format!("{t} ×{n}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    if !cert_terms.is_empty() {
        println!("  binding certificate terms: {}", fmt_terms(&cert_terms));
    }
    if !fail_terms.is_empty() {
        println!("  failing certificate terms: {}", fmt_terms(&fail_terms));
    }
    if !precond_reasons.is_empty() {
        println!("  preconditions: {}", fmt_terms(&precond_reasons));
    }

    // Winning-margin distribution: how close the beaten runner-up came.
    let mut margins: Vec<f64> = recs
        .iter()
        .filter_map(|r| r.alloc.as_ref())
        .filter_map(|a| a.runners_up.first().map(|r| a.gain - r.gain))
        .collect();
    if !margins.is_empty() {
        margins.sort_by(|a, b| a.partial_cmp(b).expect("finite margins"));
        println!(
            "\nallocation margins over the best runner-up ({} contested grants):",
            margins.len()
        );
        println!(
            "  mean {:.6}, p50 {:.6}, p95 {:.6}, max {:.6}",
            margins.iter().sum::<f64>() / margins.len() as f64,
            pctl(&margins, 0.50),
            pctl(&margins, 0.95),
            margins[margins.len() - 1],
        );
    }

    let mut rejections = 0u64;
    let (mut kprefix, mut aggregate, mut capacity) = (0u64, 0u64, 0u64);
    let mut placed = 0u64;
    let mut unplaced = 0u64;
    for rec in &recs {
        let Some(p) = &rec.place else { continue };
        if p.ps + p.workers > 0 {
            placed += 1;
        } else {
            unplaced += 1;
        }
        rejections += p.rejections;
        for r in &p.rejected {
            match r {
                PlaceReject::KPrefix { .. } => kprefix += 1,
                PlaceReject::AggregateEarlyExit { .. } => aggregate += 1,
                PlaceReject::Capacity { .. } => capacity += 1,
            }
        }
    }
    println!("\nplacement: {placed} placed, {unplaced} unplaced, {rejections} candidates rejected");
    if rejections > 0 {
        println!(
            "  retained rejection reasons: k-prefix ×{kprefix}, \
             aggregate early exit ×{aggregate}, capacity ×{capacity}"
        );
    }
}

// -- diff -------------------------------------------------------------

fn cmd_diff(args: &[String]) -> ExitCode {
    // `--ignore NAME` (repeatable) drops an artifact from the
    // comparison. The intended use is cross-engine diffs: the two sim
    // engines produce byte-identical decision artifacts but keep
    // engine-specific accounting counters in `trace.jsonl`, which a
    // determinism check across engines must not read as divergence.
    let mut ignored: Vec<&str> = Vec::new();
    let mut dirs: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--ignore" {
            match it.next() {
                Some(name) => ignored.push(name),
                None => {
                    eprintln!("--ignore requires an artifact name");
                    return ExitCode::from(2);
                }
            }
        } else if arg.starts_with("--") {
            eprintln!("unknown flag for diff: {arg}");
            return ExitCode::from(2);
        } else {
            dirs.push(arg);
        }
    }
    if dirs.len() != 2 {
        eprintln!("usage: optimus-trace diff [--ignore ARTIFACT]... RUN_A RUN_B");
        return ExitCode::from(2);
    }
    let load = |p: &str| ledger::load_run(Path::new(p));
    let (a, b) = match (load(dirs[0]), load(dirs[1])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if a.manifest.schema_version != b.manifest.schema_version {
        eprintln!(
            "warning: runs were recorded with different trace schemas \
             (v{} vs v{})",
            a.manifest.schema_version, b.manifest.schema_version
        );
    }
    let mut diff = ledger::diff_runs(&a, &b);
    if !ignored.is_empty() {
        diff.differing.retain(|n| !ignored.contains(&n.as_str()));
        diff.only_in_one
            .retain(|(n, _)| !ignored.contains(&n.as_str()));
        diff.identical = diff.differing.is_empty() && diff.only_in_one.is_empty();
        if let Some(d) = &diff.divergence {
            if ignored.contains(&d.artifact.as_str()) {
                diff.divergence = None;
            }
        }
    }
    println!("diff: {} vs {}", a.dir.display(), b.dir.display());
    for name in &ignored {
        println!("  ~ {name} (ignored)");
    }
    for name in &diff.matching {
        println!("  = {name}");
    }
    for name in &diff.differing {
        println!("  ! {name}");
    }
    for (name, which) in &diff.only_in_one {
        println!("  ? {name} (only in run {which})");
    }
    if diff.identical {
        println!(
            "runs are identical ({} artifacts match)",
            diff.matching.len()
        );
        return ExitCode::SUCCESS;
    }
    // Artifact asymmetry with no shared artifact differing: there is no
    // line-by-line divergence to localize — one run simply recorded an
    // artifact the other did not (e.g. provenance.jsonl on one side
    // only). That is a comparability error, not a decision divergence.
    if diff.differing.is_empty() && !diff.only_in_one.is_empty() {
        for (name, which) in &diff.only_in_one {
            let (has, lacks) = match which {
                'a' => (dirs[0], dirs[1]),
                _ => (dirs[1], dirs[0]),
            };
            println!(
                "runs are not comparable: {has} recorded {name} but {lacks} did not \
                 (all {} shared artifacts match)",
                diff.matching.len()
            );
        }
        return ExitCode::from(2);
    }
    if let Some(d) = &diff.divergence {
        println!("\nfirst divergence: {}:{}", d.artifact, d.line);
        if let (Some(round), Some(t)) = (d.round, d.t) {
            println!("  round {round} at t = {t:.0} s");
        } else if let Some(t) = d.t {
            println!("  t = {t:.0} s");
        }
        if let Some(job) = d.job {
            println!("  job {job}");
        }
        println!("  A: {}", d.kind_a);
        println!("  B: {}", d.kind_b);
        println!("\n--- {}", a.dir.display());
        for line in &d.context_a {
            println!("  {line}");
        }
        println!("+++ {}", b.dir.display());
        for line in &d.context_b {
            println!("  {line}");
        }
        if !d.trace_context_a.is_empty() || !d.trace_context_b.is_empty() {
            println!("\ndecision trace at round {}:", d.round.unwrap_or(0));
            println!("--- {}", a.dir.display());
            for line in &d.trace_context_a {
                println!("  {line}");
            }
            println!("+++ {}", b.dir.display());
            for line in &d.trace_context_b {
                println!("  {line}");
            }
        }
    }
    ExitCode::from(1)
}

// -- check-bench ------------------------------------------------------

/// One bench history file's check plan: which fields identify a grid
/// point and which fields are the guarded metrics. Each metric carries
/// its own direction (`true` = higher is better) and is compared
/// independently within the grid point: a run that trades simulated
/// throughput against event throughput regresses whichever side fell,
/// rather than being judged on a single blended number.
struct BenchCheck {
    default_path: &'static str,
    flag: &'static str,
    key_fields: &'static [&'static str],
    /// `(field, higher_is_better)`: latencies guard against increases,
    /// throughputs against decreases.
    metrics: &'static [(&'static str, bool)],
}

const BENCH_CHECKS: [BenchCheck; 3] = [
    BenchCheck {
        default_path: "BENCH_sched.json",
        flag: "--sched",
        // `churn_pct`/`delta` are absent on full-round points (legacy
        // and new), so pre-delta history keeps gating those; the
        // steady-state churn points carry both and gate separately per
        // path (delta=1 incremental, delta=0 full).
        key_fields: &["jobs", "nodes", "churn_pct", "delta"],
        metrics: &[("mean_ns", false)],
    },
    BenchCheck {
        default_path: "BENCH_fit.json",
        flag: "--fit",
        key_fields: &["jobs", "history", "dirty"],
        metrics: &[("mean_ns_optimized", false)],
    },
    BenchCheck {
        default_path: "BENCH_sim.json",
        flag: "--sim",
        key_fields: &["jobs"],
        metrics: &[
            ("sim_seconds_per_wall_second", true),
            ("events_per_wall_second", true),
        ],
    },
];

fn cmd_check_bench(args: &[String]) -> ExitCode {
    let tolerance: f64 = match flag_value(args, "--tolerance") {
        None => 0.10,
        Some(raw) => match raw.parse() {
            Ok(t) => t,
            Err(_) => {
                eprintln!("invalid value for --tolerance: {raw}");
                return ExitCode::from(2);
            }
        },
    };
    let mut regressions = 0usize;
    for check in &BENCH_CHECKS {
        let path = flag_value(args, check.flag).unwrap_or(check.default_path);
        if !Path::new(path).exists() {
            println!("check-bench: {path}: not found, skipped");
            continue;
        }
        match check_bench_file(path, check, tolerance) {
            Ok(found) => regressions += found,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if regressions > 0 {
        eprintln!(
            "check-bench: {regressions} regression(s) past tolerance {:.0} %",
            tolerance * 100.0
        );
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Checks the newest entry of one bench history against the best prior
/// entry per grid point. Returns the number of regressions found.
fn check_bench_file(path: &str, check: &BenchCheck, tolerance: f64) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let value: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let entries = value
        .as_array()
        .ok_or_else(|| format!("{path}: expected a JSON array of bench entries"))?;
    if entries.len() < 2 {
        println!(
            "check-bench: {path}: {} entr{}, nothing to compare yet — pass",
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" }
        );
        return Ok(0);
    }
    let newest = &entries[entries.len() - 1];
    let prior = &entries[..entries.len() - 1];
    let label = |e: &serde_json::Value| {
        e.get("label")
            .and_then(|l| l.as_str())
            .unwrap_or("<unlabelled>")
            .to_string()
    };
    let points = |e: &serde_json::Value| -> Vec<serde_json::Value> {
        e.get("points")
            .and_then(|p| p.as_array())
            .map(<[serde_json::Value]>::to_vec)
            .unwrap_or_default()
    };
    // A key field may legitimately be absent or null in a point (the
    // all-dirty `bench_fit` points carry `dirty: null`, and pre-PR-8
    // entries no `dirty` at all), so a missing value is a distinct
    // grid coordinate rather than grounds to skip the point — old
    // entries keep gating the matching legacy points.
    let key_of = |p: &serde_json::Value| -> Vec<Option<u64>> {
        check
            .key_fields
            .iter()
            .map(|f| p.get(f).and_then(|v| v.as_u64()))
            .collect()
    };
    let mut regressions = 0usize;
    let mut checked = 0usize;
    for point in points(newest) {
        let key = key_of(&point);
        for &(metric, higher_is_better) in check.metrics {
            let Some(new_val) = point.get(metric).and_then(|v| v.as_f64()) else {
                continue;
            };
            // Best prior value for the same grid point and metric:
            // lowest latency, or highest throughput. A metric absent
            // from every prior entry (added after the history started)
            // has no baseline and is skipped.
            let mut best: Option<(f64, String)> = None;
            for entry in prior {
                for p in points(entry) {
                    if key_of(&p) != key {
                        continue;
                    }
                    if let Some(v) = p.get(metric).and_then(|v| v.as_f64()) {
                        let better = if higher_is_better {
                            best.as_ref().is_none_or(|(b, _)| v > *b)
                        } else {
                            best.as_ref().is_none_or(|(b, _)| v < *b)
                        };
                        if better {
                            best = Some((v, label(entry)));
                        }
                    }
                }
            }
            let Some((best_val, best_label)) = best else {
                continue;
            };
            checked += 1;
            let regressed = if higher_is_better {
                new_val < best_val * (1.0 - tolerance)
            } else {
                new_val > best_val * (1.0 + tolerance)
            };
            if regressed {
                regressions += 1;
                let grid: Vec<String> = check
                    .key_fields
                    .iter()
                    .zip(&key)
                    .map(|(f, v)| match v {
                        Some(v) => format!("{f}={v}"),
                        None => format!("{f}=-"),
                    })
                    .collect();
                let show = |v: f64| {
                    if higher_is_better {
                        format!("{v:.2}")
                    } else {
                        format!("{:.2} ms", v / 1e6)
                    }
                };
                eprintln!(
                    "check-bench: {path}: REGRESSION at {}: {} {} vs best {} \
                     ({:?}, {:+.1} %)",
                    grid.join(" "),
                    metric,
                    show(new_val),
                    show(best_val),
                    best_label,
                    100.0 * (new_val / best_val - 1.0),
                );
            }
        }
    }
    println!(
        "check-bench: {path}: newest entry {:?} vs {} prior — {checked} point-metric pairs \
         checked, {regressions} regression(s)",
        label(newest),
        prior.len(),
    );
    Ok(regressions)
}
