//! `optimus-trace` — inspect a telemetry JSONL trace written by
//! `optimus-sim run --trace FILE` (or any [`optimus::telemetry::Telemetry`]
//! handle's `write_json_lines`).
//!
//! Prints per-job timelines, scheduling-round wall-clock percentiles,
//! and the final counter/histogram snapshot.

use optimus::telemetry::{TraceEvent, TraceLine};
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "\
optimus-trace — summarize an Optimus telemetry trace (JSONL)

USAGE:
  optimus-trace FILE [--top N] [--no-jobs] [--spans]

FLAGS:
  --top N    counters to list                (default 10)
  --no-jobs  skip the per-job timelines
  --spans    also print the per-span-name aggregates
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return if args.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let path = &args[0];
    let top: usize = match flag_value(&args, "--top") {
        None => 10,
        Some(raw) => match raw.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("invalid value for --top: {raw}");
                return ExitCode::FAILURE;
            }
        },
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut lines = Vec::new();
    let mut bad = 0usize;
    for raw in text.lines().filter(|l| !l.trim().is_empty()) {
        match serde_json::from_str::<TraceLine>(raw) {
            Ok(line) => lines.push(line),
            Err(_) => bad += 1,
        }
    }
    if lines.is_empty() {
        eprintln!("error: {path}: no parseable trace lines ({bad} unparseable)");
        return ExitCode::FAILURE;
    }
    if bad > 0 {
        eprintln!("warning: skipped {bad} unparseable lines");
    }

    print_overview(path, &lines);
    print_rounds(&lines);
    if !args.iter().any(|a| a == "--no-jobs") {
        print_jobs(&lines);
    }
    print_counters(&lines, top);
    print_histograms(&lines);
    if args.iter().any(|a| a == "--spans") {
        print_spans(&lines);
    }
    ExitCode::SUCCESS
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn pctl(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Quantile estimate from exported histogram buckets: the upper bound
/// of the bucket holding the nearest-rank observation, clamped to the
/// observed range (mirrors the collector's own estimator).
fn hist_quantile(bounds: &[f64], counts: &[u64], count: u64, min: f64, max: f64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut acc = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        acc += c;
        if acc >= target {
            let ub = if i < bounds.len() { bounds[i] } else { max };
            return ub.clamp(min, max);
        }
    }
    max
}

fn print_overview(path: &str, lines: &[TraceLine]) {
    let mut events = 0usize;
    let mut spans = 0usize;
    let mut counters = 0usize;
    let mut gauges = 0usize;
    let mut histograms = 0usize;
    for line in lines {
        match line {
            TraceLine::Event { .. } => events += 1,
            TraceLine::Span { .. } => spans += 1,
            TraceLine::Counter { .. } => counters += 1,
            TraceLine::Gauge { .. } => gauges += 1,
            TraceLine::Histogram { .. } => histograms += 1,
        }
    }
    println!("trace: {path}");
    println!(
        "  {events} decision events, {spans} spans, {counters} counters, \
         {gauges} gauges, {histograms} histograms"
    );
}

fn print_rounds(lines: &[TraceLine]) {
    let mut walls = Vec::new();
    let mut last = None;
    for line in lines {
        if let TraceLine::Event {
            event:
                TraceEvent::Round {
                    round,
                    t_s,
                    active_jobs,
                    wall_us,
                },
            ..
        } = line
        {
            walls.push(*wall_us as f64);
            last = Some((*round, *t_s, *active_jobs));
        }
    }
    if walls.is_empty() {
        return;
    }
    walls.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
    let mean = walls.iter().sum::<f64>() / walls.len() as f64;
    let (rounds, t_s, _) = last.expect("walls non-empty");
    println!("\nscheduling rounds: {rounds} over {t_s:.0} s of simulated time");
    println!(
        "  wall per round: mean {:.0} us, p50 {:.0} us, p95 {:.0} us, p99 {:.0} us, max {:.0} us",
        mean,
        pctl(&walls, 0.50),
        pctl(&walls, 0.95),
        pctl(&walls, 0.99),
        walls[walls.len() - 1],
    );
}

#[derive(Default)]
struct JobDigest {
    timeline: Vec<(f64, String)>,
    grants: usize,
    placements: usize,
    speed_fits: usize,
    convergence_fits: usize,
    fit_failures: usize,
}

fn print_jobs(lines: &[TraceLine]) {
    let mut jobs: BTreeMap<u64, JobDigest> = BTreeMap::new();
    for line in lines {
        let event = match line {
            TraceLine::Event { event, .. } => event,
            _ => continue,
        };
        match event {
            TraceEvent::JobEvent { t_s, job, what } => {
                jobs.entry(*job)
                    .or_default()
                    .timeline
                    .push((*t_s, what.clone()));
            }
            TraceEvent::AllocGrant { job, .. } => jobs.entry(*job).or_default().grants += 1,
            TraceEvent::Placement { job, .. } => jobs.entry(*job).or_default().placements += 1,
            TraceEvent::SpeedFit { job, .. } => jobs.entry(*job).or_default().speed_fits += 1,
            TraceEvent::ConvergenceFit { job, .. } => {
                jobs.entry(*job).or_default().convergence_fits += 1
            }
            TraceEvent::FitFailure { job, .. } => jobs.entry(*job).or_default().fit_failures += 1,
            _ => {}
        }
    }
    if jobs.is_empty() {
        return;
    }
    println!("\nper-job timelines:");
    for (id, digest) in &jobs {
        println!(
            "  job {id}: {} grants, {} placements, {} speed fits, \
             {} convergence fits, {} fit failures",
            digest.grants,
            digest.placements,
            digest.speed_fits,
            digest.convergence_fits,
            digest.fit_failures,
        );
        // Collapse runs of identical edges ("paused ×12") to keep long
        // traces readable.
        let mut i = 0;
        while i < digest.timeline.len() {
            let (t, what) = &digest.timeline[i];
            let mut j = i + 1;
            while j < digest.timeline.len() && digest.timeline[j].1 == *what {
                j += 1;
            }
            if j - i > 1 {
                println!("    {t:>9.0} s  {what} ×{}", j - i);
            } else {
                println!("    {t:>9.0} s  {what}");
            }
            i = j;
        }
    }
}

fn print_counters(lines: &[TraceLine], top: usize) {
    let mut counters: Vec<(&str, u64)> = lines
        .iter()
        .filter_map(|l| match l {
            TraceLine::Counter { name, value } => Some((name.as_str(), *value)),
            _ => None,
        })
        .collect();
    if counters.is_empty() {
        return;
    }
    counters.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    println!("\ntop counters:");
    for (name, value) in counters.iter().take(top) {
        println!("  {value:>12}  {name}");
    }
    if counters.len() > top {
        println!("  ... and {} more", counters.len() - top);
    }
}

fn print_histograms(lines: &[TraceLine]) {
    let mut any = false;
    for line in lines {
        if let TraceLine::Histogram {
            name,
            bounds,
            counts,
            count,
            sum,
            min,
            max,
        } = line
        {
            if !any {
                println!("\nhistograms:");
                any = true;
            }
            let mean = if *count == 0 {
                0.0
            } else {
                sum / *count as f64
            };
            println!(
                "  {name}: n={count} mean={mean:.1} p50={:.1} p95={:.1} p99={:.1} max={max:.1}",
                hist_quantile(bounds, counts, *count, *min, *max, 0.50),
                hist_quantile(bounds, counts, *count, *min, *max, 0.95),
                hist_quantile(bounds, counts, *count, *min, *max, 0.99),
            );
        }
    }
}

fn print_spans(lines: &[TraceLine]) {
    struct Agg {
        count: usize,
        total_us: u64,
        durs_us: Vec<f64>,
    }
    let mut by_name: BTreeMap<&str, Agg> = BTreeMap::new();
    for line in lines {
        if let TraceLine::Span { name, dur_us, .. } = line {
            let agg = by_name.entry(name.as_str()).or_insert(Agg {
                count: 0,
                total_us: 0,
                durs_us: Vec::new(),
            });
            agg.count += 1;
            agg.total_us += dur_us;
            agg.durs_us.push(*dur_us as f64);
        }
    }
    if by_name.is_empty() {
        return;
    }
    // Per-name latency percentiles: `sched.decision` here is the
    // per-round decision latency (one span per scheduling round).
    println!("\nspans:");
    for (name, agg) in by_name.iter_mut() {
        agg.durs_us
            .sort_by(|a, b| a.partial_cmp(b).expect("span durations are finite"));
        println!(
            "  {name}: n={} total={} us mean={:.0} us p50={:.0} us p95={:.0} us p99={:.0} us max={:.0} us",
            agg.count,
            agg.total_us,
            agg.total_us as f64 / agg.count as f64,
            pctl(&agg.durs_us, 0.50),
            pctl(&agg.durs_us, 0.95),
            pctl(&agg.durs_us, 0.99),
            agg.durs_us[agg.durs_us.len() - 1],
        );
    }
}
