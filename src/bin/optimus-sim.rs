//! `optimus-sim` — command-line driver for the Optimus cluster
//! simulator.
//!
//! ```text
//! optimus-sim run       simulate a workload under a scheduler
//! optimus-sim batch     sweep schedulers × seeds across worker threads
//! optimus-sim generate  emit a workload trace as JSON
//! optimus-sim models    print the Table-1 model zoo
//! ```
//!
//! Run `optimus-sim help` (or any subcommand with `--help`) for flags.

use optimus::prelude::*;
use optimus::workload::trace::WorkloadTrace;
use optimus_bench::{ComparisonSpec, SchedulerChoice};
use std::process::ExitCode;

const USAGE: &str = "\
optimus-sim — Optimus (EuroSys 2018) cluster-scheduling simulator

USAGE:
  optimus-sim run      [--jobs N] [--seed S] [--scheduler NAME] [--target-hours H]
                       [--interval SECS] [--trace-in FILE] [--trace-out FILE]
                       [--events] [--json] [--trace FILE] [--chrome-trace FILE]
                       [--ledger DIR] [--flight CAP] [--progress SECS]
  optimus-sim batch    [--jobs N] [--seeds S1,S2,..] [--schedulers A,B,..]
                       [--threads T] [--target-hours H] [--interval SECS] [--json]
  optimus-sim generate [--jobs N] [--seed S] [--target-hours H]
  optimus-sim models

SCHEDULERS: optimus (default) | drf | tetris | fifo

FLAGS:
  --jobs N          number of jobs to generate       (default 9)
  --seed S          RNG seed                         (default 17)
  --scheduler NAME  scheduler under test             (default optimus)
  --target-hours H  median target job duration       (default 2.0)
  --interval SECS   scheduling interval              (default 600)
  --trace-in FILE   simulate a saved workload trace instead of generating
  --trace-out FILE  also save the generated workload as a trace
  --events          record and print the decision log
  --json            print the report as JSON instead of text
  --trace FILE      write a telemetry trace (JSONL) for optimus-trace
  --chrome-trace FILE  write the same trace as Chrome trace_event JSON
  --ledger DIR      write a run ledger (manifest + hashed artifacts) to DIR;
                    implies telemetry, event recording, the flight recorder
                    and decision provenance (provenance.jsonl, `optimus-trace
                    why`)
  --flight CAP      sample a cluster snapshot per scheduling round into a ring
                    buffer of CAP snapshots (default off; --ledger turns it on
                    at 4096)
  --progress SECS   live status line on stderr every SECS wall seconds
                    (default off)

BATCH FLAGS:
  --seeds LIST      comma-separated RNG seeds        (default 17,23,31)
  --schedulers LIST comma-separated scheduler names  (default all four)
  --threads T       worker threads for the sweep     (default: all cores,
                    or the OPTIMUS_THREADS environment variable)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("models") => cmd_models(),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand: {other}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: `--name value` pairs plus boolean flags.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, name: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value for {name}: {raw}")),
        }
    }
}

fn build_workload(flags: &Flags) -> Result<Vec<JobSpec>, String> {
    if let Some(path) = flags.get("--trace-in") {
        let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let trace = WorkloadTrace::from_json(&json).map_err(|e| e.to_string())?;
        return Ok(trace.jobs);
    }
    let jobs: usize = flags.parse("--jobs", 9)?;
    let seed: u64 = flags.parse("--seed", 17)?;
    let hours: f64 = flags.parse("--target-hours", 2.0)?;
    Ok(
        WorkloadGenerator::new(ArrivalProcess::paper_default(jobs), seed)
            .with_target_job_seconds(Some(hours * 3_600.0))
            .generate(),
    )
}

fn cmd_run(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let flags = Flags { args };
    let run = || -> Result<(), String> {
        let jobs = build_workload(&flags)?;
        if let Some(path) = flags.get("--trace-out") {
            let trace = WorkloadTrace::new("generated by optimus-sim run", jobs.clone());
            std::fs::write(path, trace.to_json()).map_err(|e| format!("{path}: {e}"))?;
        }
        let job_count = jobs.len();
        let seed: u64 = flags.parse("--seed", 17)?;
        let scheduler_name = flags.get("--scheduler").unwrap_or("optimus");
        let trace_path = flags.get("--trace");
        let chrome_path = flags.get("--chrome-trace");
        let ledger_dir = flags.get("--ledger");
        for name in ["--trace", "--chrome-trace", "--ledger"] {
            if flags.has(name) && flags.get(name).is_none() {
                return Err(format!("{name} requires a path"));
            }
        }
        let tel = if trace_path.is_some() || chrome_path.is_some() || ledger_dir.is_some() {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        // A ledgered run records decision provenance too, so
        // `optimus-trace why` can explain any job in it.
        if ledger_dir.is_some() {
            tel.enable_provenance();
        }
        let (scheduler, assignment): (Box<CompositeScheduler>, AssignmentPolicy) =
            match scheduler_name {
                "optimus" => (
                    Box::new(OptimusScheduler::build_with_telemetry(tel.clone())),
                    AssignmentPolicy::Paa,
                ),
                "drf" => (
                    Box::new(DrfScheduler::build().with_telemetry(tel.clone())),
                    AssignmentPolicy::MxnetDefault,
                ),
                "tetris" => (
                    Box::new(TetrisScheduler::build().with_telemetry(tel.clone())),
                    AssignmentPolicy::MxnetDefault,
                ),
                "fifo" => (
                    Box::new(
                        CompositeScheduler::new(
                            "FIFO",
                            Box::new(FifoAllocator),
                            Box::new(SpreadPlacer),
                        )
                        .with_telemetry(tel.clone()),
                    ),
                    AssignmentPolicy::MxnetDefault,
                ),
                other => return Err(format!("unknown scheduler: {other}")),
            };
        let interval_s: f64 = flags.parse("--interval", 600.0)?;
        // A/B switch for the event-skipping tick loop: results are
        // identical either way; only wall-clock changes.
        let fast_forward = std::env::var("OPTIMUS_FAST_FORWARD").map_or(true, |v| v.trim() != "0");
        let progress_every_s: f64 = flags.parse("--progress", 0.0)?;
        let flight = match flags.get("--flight") {
            Some(raw) => {
                let capacity: usize = raw
                    .parse()
                    .map_err(|_| format!("invalid value for --flight: {raw}"))?;
                Some(FlightConfig { capacity })
            }
            // A ledger should always carry the utilization timeline, so
            // `optimus-trace timeline` can render any recorded run.
            None => ledger_dir.map(|_| FlightConfig::default()),
        };
        // Engine selection mirrors the library default (the
        // OPTIMUS_EVENT_ENGINE switch) but is resolved here so the
        // ledger can echo which engine produced the run — the
        // artifacts themselves are engine-invariant by contract.
        let engine = SimEngine::from_env();
        let cfg = SimConfig {
            interval_s,
            seed,
            assignment,
            record_events: flags.has("--events") || ledger_dir.is_some(),
            telemetry: tel.clone(),
            fast_forward,
            engine,
            flight,
            progress_every_s,
            ..SimConfig::default()
        };
        // Resolved from OPTIMUS_DELTA_ROUNDS by the library default;
        // echoed into the ledger like the engine switch above.
        let delta_rounds = cfg.delta_rounds;
        let mut sim = Simulation::new(Cluster::paper_testbed(), jobs, scheduler, cfg);
        let report = sim.run();

        if let Some(dir) = ledger_dir {
            use serde_json::Value;
            let config = Value::Object(vec![
                ("jobs".into(), Value::Num(job_count as f64)),
                ("seed".into(), Value::Num(seed as f64)),
                ("scheduler".into(), Value::Str(scheduler_name.to_string())),
                ("interval_s".into(), Value::Num(interval_s)),
                ("fast_forward".into(), Value::Bool(fast_forward)),
                ("delta_rounds".into(), Value::Bool(delta_rounds)),
                ("provenance".into(), Value::Bool(true)),
                (
                    "engine".into(),
                    Value::Str(
                        match engine {
                            SimEngine::Event => "event",
                            SimEngine::Tick => "tick",
                        }
                        .to_string(),
                    ),
                ),
                (
                    "trace_in".into(),
                    flags
                        .get("--trace-in")
                        .map_or(Value::Null, |p| Value::Str(p.to_string())),
                ),
            ]);
            let label = format!("{scheduler_name}-{job_count}x{seed}");
            let path = optimus::ledger::sim_run_ledger(&report, &tel, &label, seed, config)
                .write(std::path::Path::new(dir))
                .map_err(|e| format!("{dir}: {e}"))?;
            eprintln!("run ledger written to {}", path.display());
        }

        if let Some(path) = trace_path {
            tel.write_json_lines(std::path::Path::new(path))
                .map_err(|e| format!("{path}: {e}"))?;
            eprintln!("telemetry trace written to {path}");
        }
        if let Some(path) = chrome_path {
            std::fs::write(path, tel.to_chrome_trace()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("chrome trace written to {path}");
        }

        if flags.has("--json") {
            println!(
                "{}",
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
            );
        } else {
            println!("scheduler: {}", report.scheduler);
            let mut jct = report.jct.clone();
            jct.sort_by_key(|&(id, _)| id);
            for (id, t) in &jct {
                println!("  {id}: JCT {t:>8.0} s");
            }
            println!(
                "average JCT: {:.0} s (p50 {:.0} s, p95 {:.0} s, p99 {:.0} s)",
                report.avg_jct(),
                report.p50_jct(),
                report.p95_jct(),
                report.p99_jct()
            );
            println!("makespan:    {:.0} s", report.makespan);
            println!(
                "overhead:    {:.2} % of makespan ({} scale events)",
                100.0 * report.scaling_overhead_fraction(),
                report.scale_events
            );
            if report.unfinished_jobs > 0 {
                println!("WARNING: {} unfinished jobs", report.unfinished_jobs);
            }
            if flags.has("--events") {
                println!("\ndecision log ({} events):", report.events.len());
                println!("{}", report.events.to_json_lines());
            }
        }
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `batch`: a schedulers × seeds comparison sweep fanned across worker
/// threads (the same parallel runner the fig binaries use). Results are
/// aggregated per scheduler and identical to a serial sweep — cells are
/// collected in input order regardless of thread scheduling.
fn cmd_batch(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let flags = Flags { args };
    let run = || -> Result<(), String> {
        let jobs: usize = flags.parse("--jobs", 9)?;
        let hours: f64 = flags.parse("--target-hours", 2.0)?;
        let interval: f64 = flags.parse("--interval", 600.0)?;
        let threads: usize = flags.parse("--threads", optimus_bench::available_threads())?;
        let seeds: Vec<u64> = flags
            .get("--seeds")
            .unwrap_or("17,23,31")
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| format!("invalid seed: {}", s.trim()))
            })
            .collect::<Result<_, _>>()?;
        let choices: Vec<SchedulerChoice> = flags
            .get("--schedulers")
            .unwrap_or("optimus,drf,tetris,fifo")
            .split(',')
            .map(|s| match s.trim() {
                "optimus" => Ok(SchedulerChoice::Optimus),
                "drf" => Ok(SchedulerChoice::Drf),
                "tetris" => Ok(SchedulerChoice::Tetris),
                "fifo" => Ok(SchedulerChoice::Fifo),
                other => Err(format!("unknown scheduler: {other}")),
            })
            .collect::<Result<_, _>>()?;
        if seeds.is_empty() || choices.is_empty() {
            return Err("need at least one seed and one scheduler".into());
        }
        let spec = ComparisonSpec {
            arrivals: ArrivalProcess::paper_default(jobs),
            target_job_seconds: Some(hours * 3_600.0),
            seeds,
            base_config: SimConfig {
                interval_s: interval,
                ..SimConfig::default()
            },
            ..ComparisonSpec::default()
        };
        let results = optimus_bench::run_schedulers_parallel(&spec, &choices, threads);
        if flags.has("--json") {
            optimus_bench::print_json("batch", &results);
        } else {
            let title = format!(
                "batch: {jobs} jobs × {} seeds × {} schedulers ({threads} threads)",
                spec.seeds.len(),
                choices.len()
            );
            optimus_bench::print_comparison(&title, &results);
        }
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_generate(args: &[String]) -> ExitCode {
    let flags = Flags { args };
    match build_workload(&flags) {
        Ok(jobs) => {
            let trace = WorkloadTrace::new("generated by optimus-sim generate", jobs);
            println!("{}", trace.to_json());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_models() -> ExitCode {
    println!(
        "{:<14} {:>9} {:>6} {:<22} {:>11} {:>8}",
        "model", "params M", "type", "dataset", "examples", "epochs@1%"
    );
    for m in ModelKind::ALL {
        let p = m.profile();
        println!(
            "{:<14} {:>9.1} {:>6} {:<22} {:>11} {:>8}",
            p.name,
            p.params_million,
            match p.network {
                optimus::workload::NetworkType::Cnn => "CNN",
                optimus::workload::NetworkType::Rnn => "RNN",
            },
            p.dataset,
            p.dataset_size,
            p.curve.epochs_to_converge(0.01, 3).unwrap_or(0),
        );
    }
    ExitCode::SUCCESS
}
