//! Render a recorded run as a per-job text Gantt chart and a cluster
//! utilization timeline.
//!
//! Both renderers consume the run-ledger artifacts
//! ([`crate::ledger::EVENTS_ARTIFACT`] and
//! [`crate::ledger::FLIGHT_ARTIFACT`]) so any directory written with
//! `optimus-sim run --ledger DIR` can be replayed visually after the
//! fact — `optimus-trace timeline DIR` is the CLI entry point.
//!
//! The Gantt lanes are derived from the decision stream, not sampled:
//! each job's lane is the exact sequence of queued → running → paused
//! segments its events imply, quantized only at the terminal's column
//! resolution. [`segments`] exposes the same intervals as typed data
//! (and [`segments_json_lines`] as JSONL) for external plotting.

use optimus_simulator::{SimEvent, SimEventKind};
use optimus_telemetry::FlightLog;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default chart width, columns.
pub const DEFAULT_WIDTH: usize = 72;

/// Lane glyphs: queued (admitted, never yet placed), running, paused
/// (placed before, currently holding no tasks).
const GLYPH_QUEUED: char = '░';
const GLYPH_RUNNING: char = '█';
const GLYPH_PAUSED: char = '·';

/// One contiguous interval of a job's life in a single state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// The job.
    pub job: u64,
    /// `"queued"`, `"running"` or `"paused"`.
    pub state: String,
    /// Segment start, simulated seconds.
    pub start_s: f64,
    /// Segment end, simulated seconds.
    pub end_s: f64,
}

/// Parses an `events.jsonl` artifact into typed events.
pub fn parse_events(jsonl: &str) -> Result<Vec<SimEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: SimEvent =
            serde_json::from_str(line).map_err(|e| format!("events.jsonl:{}: {e}", i + 1))?;
        events.push(event);
    }
    Ok(events)
}

/// The per-job state a Gantt lane tracks.
#[derive(Debug, Clone, Copy, PartialEq)]
enum LaneState {
    Queued,
    Running,
    Paused,
}

impl LaneState {
    fn name(self) -> &'static str {
        match self {
            LaneState::Queued => "queued",
            LaneState::Running => "running",
            LaneState::Paused => "paused",
        }
    }

    fn glyph(self) -> char {
        match self {
            LaneState::Queued => GLYPH_QUEUED,
            LaneState::Running => GLYPH_RUNNING,
            LaneState::Paused => GLYPH_PAUSED,
        }
    }
}

/// Per-job digest extracted from the event stream: state-change edges
/// plus the summary numbers printed next to each lane.
#[derive(Debug, Clone)]
struct Lane {
    edges: Vec<(f64, LaneState)>,
    end: Option<f64>,
    jct: Option<f64>,
    rescales: usize,
}

/// Folds the event stream into per-job lanes, job-id ordered.
fn lanes(events: &[SimEvent]) -> BTreeMap<u64, Lane> {
    let mut lanes: BTreeMap<u64, Lane> = BTreeMap::new();
    for event in events {
        let job = event.job().0;
        let lane = lanes.entry(job).or_insert(Lane {
            edges: Vec::new(),
            end: None,
            jct: None,
            rescales: 0,
        });
        match event.kind {
            SimEventKind::JobAdmitted { .. } => lane.edges.push((event.t, LaneState::Queued)),
            SimEventKind::JobScheduled { rescale, .. } => {
                lane.edges.push((event.t, LaneState::Running));
                if rescale {
                    lane.rescales += 1;
                }
            }
            SimEventKind::JobPaused { .. } => {
                // Before the first placement a job without tasks is
                // *queued*, not paused — keep the distinction.
                let ran = lane.edges.iter().any(|&(_, s)| s == LaneState::Running);
                let state = if ran {
                    LaneState::Paused
                } else {
                    LaneState::Queued
                };
                lane.edges.push((event.t, state));
            }
            SimEventKind::JobFinished { jct, .. } => {
                lane.end = Some(event.t);
                lane.jct = Some(jct);
            }
            SimEventKind::StragglerReplaced { .. } | SimEventKind::ChunksRebalanced { .. } => {}
        }
    }
    lanes
}

/// The state a lane is in at time `t` (`None` before admission or
/// after finish).
fn state_at(lane: &Lane, t: f64) -> Option<LaneState> {
    if let Some(end) = lane.end {
        if t >= end {
            return None;
        }
    }
    let mut current = None;
    for &(edge_t, state) in &lane.edges {
        if edge_t <= t {
            current = Some(state);
        } else {
            break;
        }
    }
    current
}

/// The typed queued/running/paused intervals of every job, job-id then
/// time ordered. Open-ended lanes (jobs alive at the cap) close at the
/// last event time in the stream.
pub fn segments(events: &[SimEvent]) -> Vec<Segment> {
    let t_last = events.iter().map(|e| e.t).fold(0.0_f64, f64::max);
    let mut out = Vec::new();
    for (job, lane) in lanes(events) {
        let close = lane.end.unwrap_or(t_last);
        let mut open: Option<(f64, LaneState)> = None;
        for &(t, state) in &lane.edges {
            match open {
                Some((start, prev)) if prev == state => {
                    // Same state re-asserted (e.g. a rescale): the
                    // segment just keeps going.
                    let _ = start;
                }
                Some((start, prev)) => {
                    if t > start {
                        out.push(Segment {
                            job,
                            state: prev.name().to_string(),
                            start_s: start,
                            end_s: t,
                        });
                    }
                    open = Some((t, state));
                }
                None => open = Some((t, state)),
            }
        }
        if let Some((start, state)) = open {
            if close > start {
                out.push(Segment {
                    job,
                    state: state.name().to_string(),
                    start_s: start,
                    end_s: close,
                });
            }
        }
    }
    out
}

/// [`segments`] as JSON lines, one [`Segment`] per line.
pub fn segments_json_lines(events: &[SimEvent]) -> String {
    let mut out = String::new();
    for seg in segments(events) {
        out.push_str(&serde_json::to_string(&seg).expect("segment serializes"));
        out.push('\n');
    }
    out
}

/// Renders the per-job Gantt chart: one lane per job across `width`
/// columns, with per-lane JCT and rescale annotations and a legend.
pub fn render_gantt(events: &[SimEvent], width: usize) -> String {
    let width = width.max(10);
    let lanes = lanes(events);
    if lanes.is_empty() {
        return "(no job events — run with --events or --ledger)\n".to_string();
    }
    let t_min = events.iter().map(|e| e.t).fold(f64::INFINITY, f64::min);
    let t_max = events.iter().map(|e| e.t).fold(0.0_f64, f64::max);
    let span = (t_max - t_min).max(1.0);
    let mut out = String::new();
    out.push_str(&format!(
        "job Gantt: {} jobs over {:.0} s  ({GLYPH_QUEUED} queued  \
         {GLYPH_RUNNING} running  {GLYPH_PAUSED} paused)\n",
        lanes.len(),
        span
    ));
    for (job, lane) in &lanes {
        let mut row = String::with_capacity(width);
        for c in 0..width {
            // Sample mid-column so a column shows the state covering
            // most of it.
            let t = t_min + (c as f64 + 0.5) / width as f64 * span;
            row.push(state_at(lane, t).map_or(' ', LaneState::glyph));
        }
        let note = match lane.jct {
            Some(jct) => format!("jct {jct:>8.0} s, {} rescales", lane.rescales),
            None => format!("unfinished, {} rescales", lane.rescales),
        };
        out.push_str(&format!("  job {job:>3} |{row}| {note}\n"));
    }
    out.push_str(&format!(
        "          {}^ t = {t_min:.0} s{}t = {t_max:.0} s ^\n",
        "",
        " ".repeat(width.saturating_sub(24))
    ));
    out
}

/// Block glyph for a level in `[0, 1]`.
fn level_glyph(level: f64) -> char {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if !level.is_finite() || level <= 0.0 {
        return ' ';
    }
    let idx = ((level * 8.0).ceil() as usize).clamp(1, 8) - 1;
    BLOCKS[idx]
}

/// One utilization row: `values` bucketed into `width` columns by mean,
/// rendered as block glyphs against `max`.
fn render_row(
    label: &str,
    values: &[(f64, f64)],
    t_min: f64,
    span: f64,
    width: usize,
    max: f64,
) -> String {
    let mut sums = vec![0.0_f64; width];
    let mut counts = vec![0u32; width];
    for &(t, v) in values {
        let c = (((t - t_min) / span) * width as f64) as usize;
        let c = c.min(width - 1);
        sums[c] += v;
        counts[c] += 1;
    }
    let mut row = String::with_capacity(width);
    let mut last = 0.0_f64;
    for c in 0..width {
        if counts[c] > 0 {
            last = sums[c] / counts[c] as f64;
        }
        // Carry the last seen value across empty columns so sparse
        // snapshot streams still draw a continuous band.
        row.push(level_glyph(if max > 0.0 { last / max } else { 0.0 }));
    }
    let peak = values.iter().map(|&(_, v)| v).fold(0.0_f64, f64::max);
    format!("  {label:<16} |{row}| peak {peak:.2}\n")
}

/// Renders the cluster utilization timeline from a flight log: per-pool
/// CPU utilization, cluster memory/bandwidth, fragmentation and queue
/// depth over simulated time.
pub fn render_utilization(log: &FlightLog, width: usize) -> String {
    let width = width.max(10);
    if log.snapshots.is_empty() {
        return "(no flight snapshots — run with --flight or --ledger)\n".to_string();
    }
    let t_min = log
        .snapshots
        .iter()
        .map(|s| s.t_s)
        .fold(f64::INFINITY, f64::min);
    let t_max = log.snapshots.iter().map(|s| s.t_s).fold(0.0_f64, f64::max);
    let span = (t_max - t_min).max(1.0);
    let mut out = String::new();
    out.push_str(&format!(
        "utilization: {} snapshots over {:.0} s{}\n",
        log.snapshots.len(),
        span,
        if log.dropped > 0 {
            format!(
                "  ({} older snapshots evicted by the ring buffer)",
                log.dropped
            )
        } else {
            String::new()
        }
    ));
    // One row per pool (first-seen order), then cluster-wide rows.
    let mut pool_names = Vec::new();
    for snap in &log.snapshots {
        for pool in &snap.pools {
            if !pool_names.contains(&pool.pool) {
                pool_names.push(pool.pool.clone());
            }
        }
    }
    for name in &pool_names {
        let series: Vec<(f64, f64)> = log
            .snapshots
            .iter()
            .filter_map(|s| {
                s.pools
                    .iter()
                    .find(|p| &p.pool == name)
                    .map(|p| (s.t_s, p.cpu_util()))
            })
            .collect();
        out.push_str(&render_row(
            &format!("cpu [{name}]"),
            &series,
            t_min,
            span,
            width,
            1.0,
        ));
    }
    let series = |f: &dyn Fn(&optimus_telemetry::ClusterSnapshot) -> f64| -> Vec<(f64, f64)> {
        log.snapshots.iter().map(|s| (s.t_s, f(s))).collect()
    };
    out.push_str(&render_row(
        "cpu [cluster]",
        &series(&|s| s.cpu_util()),
        t_min,
        span,
        width,
        1.0,
    ));
    out.push_str(&render_row(
        "fragmentation",
        &series(&|s| s.fragmentation),
        t_min,
        span,
        width,
        1.0,
    ));
    let queue = series(&|s| s.queue_depth as f64);
    let queue_max = queue.iter().map(|&(_, v)| v).fold(1.0_f64, f64::max);
    out.push_str(&render_row(
        "queue depth",
        &queue,
        t_min,
        span,
        width,
        queue_max,
    ));
    let active = series(&|s| s.active_jobs as f64);
    let active_max = active.iter().map(|&(_, v)| v).fold(1.0_f64, f64::max);
    out.push_str(&render_row(
        "active jobs",
        &active,
        t_min,
        span,
        width,
        active_max,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_telemetry::{ClusterSnapshot, PoolStat};

    fn event(t: f64, kind: SimEventKind) -> SimEvent {
        SimEvent { t, kind }
    }

    fn two_job_stream() -> Vec<SimEvent> {
        use optimus_workload::JobId;
        vec![
            event(
                0.0,
                SimEventKind::JobAdmitted {
                    job: JobId(0),
                    profile_samples: 5,
                },
            ),
            event(
                0.0,
                SimEventKind::JobScheduled {
                    job: JobId(0),
                    ps: 2,
                    workers: 2,
                    servers: 1,
                    rescale: false,
                },
            ),
            event(
                100.0,
                SimEventKind::JobAdmitted {
                    job: JobId(1),
                    profile_samples: 5,
                },
            ),
            event(120.0, SimEventKind::JobPaused { job: JobId(1) }),
            event(
                600.0,
                SimEventKind::JobScheduled {
                    job: JobId(0),
                    ps: 4,
                    workers: 4,
                    servers: 2,
                    rescale: true,
                },
            ),
            event(
                600.0,
                SimEventKind::JobScheduled {
                    job: JobId(1),
                    ps: 1,
                    workers: 1,
                    servers: 1,
                    rescale: false,
                },
            ),
            event(
                900.0,
                SimEventKind::JobFinished {
                    job: JobId(0),
                    jct: 900.0,
                },
            ),
            event(
                1200.0,
                SimEventKind::JobFinished {
                    job: JobId(1),
                    jct: 1100.0,
                },
            ),
        ]
    }

    #[test]
    fn parse_events_roundtrips_the_log() {
        let jsonl: String = two_job_stream()
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let parsed = parse_events(&jsonl).expect("parses");
        assert_eq!(parsed, two_job_stream());
        assert!(parse_events("not json\n").is_err());
    }

    #[test]
    fn segments_partition_each_lane() {
        let segs = segments(&two_job_stream());
        // Job 0: running 0→900 (the rescale does not split the
        // segment). Job 1: queued 100→600, running 600→1200.
        let job0: Vec<_> = segs.iter().filter(|s| s.job == 0).collect();
        assert_eq!(job0.len(), 1);
        assert_eq!(job0[0].state, "running");
        assert_eq!((job0[0].start_s, job0[0].end_s), (0.0, 900.0));
        let job1: Vec<_> = segs.iter().filter(|s| s.job == 1).collect();
        assert_eq!(job1.len(), 2);
        assert_eq!(job1[0].state, "queued");
        assert_eq!((job1[0].start_s, job1[0].end_s), (100.0, 600.0));
        assert_eq!(job1[1].state, "running");
        assert_eq!((job1[1].start_s, job1[1].end_s), (600.0, 1200.0));
        // Contiguous per job: each segment starts where the previous
        // ended.
        assert_eq!(job1[0].end_s, job1[1].start_s);
        // JSONL export: one line per segment, parseable.
        let jsonl = segments_json_lines(&two_job_stream());
        assert_eq!(jsonl.lines().count(), segs.len());
        for line in jsonl.lines() {
            let _: Segment = serde_json::from_str(line).expect("segment parses");
        }
    }

    #[test]
    fn pre_first_placement_pause_counts_as_queued() {
        // Job 1 is paused at t=120 before ever running: that interval
        // renders as queue wait, not a scheduling stall.
        let segs = segments(&two_job_stream());
        assert!(segs.iter().all(|s| !(s.job == 1 && s.state == "paused")));
    }

    #[test]
    fn gantt_renders_lanes_and_annotations() {
        let chart = render_gantt(&two_job_stream(), 40);
        assert!(chart.contains("job   0 |"));
        assert!(chart.contains("job   1 |"));
        assert!(chart.contains("jct      900 s, 1 rescales"));
        assert!(chart.contains("jct     1100 s"));
        // Lane rows have exactly the requested width between the pipes.
        for line in chart.lines().filter(|l| l.contains('|')) {
            let inner: String = line
                .chars()
                .skip_while(|&c| c != '|')
                .skip(1)
                .take_while(|&c| c != '|')
                .collect();
            assert_eq!(inner.chars().count(), 40, "{line}");
        }
        // Empty stream degrades gracefully.
        assert!(render_gantt(&[], 40).contains("no job events"));
    }

    #[test]
    fn utilization_renders_pool_rows() {
        let mut log = FlightLog::default();
        for round in 1..=6u64 {
            log.snapshots.push(ClusterSnapshot {
                round,
                t_s: round as f64 * 600.0,
                pools: vec![PoolStat {
                    pool: "cpu".into(),
                    servers: 7,
                    cpu_used: 8.0 * round as f64,
                    cpu_total: 224.0,
                    ..PoolStat::default()
                }],
                queue_depth: (round % 3) as usize,
                active_jobs: 3,
                ..ClusterSnapshot::default()
            });
        }
        log.recorded = 6;
        let text = render_utilization(&log, 30);
        assert!(text.contains("cpu [cpu]"));
        assert!(text.contains("cpu [cluster]"));
        assert!(text.contains("queue depth"));
        assert!(text.contains("active jobs"));
        assert!(text.contains("6 snapshots"));
        // Empty log degrades gracefully.
        assert!(render_utilization(&FlightLog::default(), 30).contains("no flight snapshots"));
    }

    #[test]
    fn level_glyphs_cover_the_range() {
        assert_eq!(level_glyph(0.0), ' ');
        assert_eq!(level_glyph(1.0), '█');
        assert_eq!(level_glyph(2.0), '█');
        assert_ne!(level_glyph(0.1), level_glyph(0.9));
    }
}
